"""Tests for the placement-policy API: specs, registry, classifiers.

Pins the contract the redesign must keep: stock-policy cache keys are
byte-identical to the pre-API era, the registry is the single source of
policy names, and the capacity-aware classifiers respect their budget.
"""

import pytest

from repro.moca.classify import Thresholds, classify_object
from repro.moca.lut import ObjectProfile
from repro.moca.naming import ObjectName
from repro.moca.policy import (
    CapacityBudget,
    ClassificationPolicy,
    KnapsackClassifier,
    PolicySpec,
    ThresholdClassifier,
    UNLIMITED,
    build_policy,
    policy_canonical,
    policy_info,
    policy_names,
    register_policy,
    select_fast_tier,
    stock_policy_names,
    thresholds_from_dict,
    thresholds_to_dict,
    unregister_policy,
)
from repro.moca.profiler import profile_app
from repro.sim.single import make_policy, policy_context
from repro.sim.spec import RunSpec
from repro.trace.events import PAGE_BYTES
from repro.vm.heap import ObjectType

N = 12_000

#: SHA-256 cache keys captured on the commit *before* the policy API
#: landed.  These four pins are the tentpole's core promise: the
#: redesign must not invalidate a single cached stock-policy result.
PRE_API_KEYS = {
    ("mcf", "Heter-config1", "moca", 20_000):
        "ae1e8ff4bc9a4062327d5be316a5a7cc7b085a027a491c01b7d33ecedb1e8e91",
    ("2L1B1N", "Homogen-DDR3", "homogen", 10_000):
        "290a5b050d60590042ef88249cef70587b5ee9bfd17655ff5f589bdfee686c33",
    ("mcf", "Heter-config1", "heter-app", 20_000):
        "792142fdeb3a2f7f9edf08fd321af8673a4638a859efccf534756041b44802b1",
    ("lbm", "Homogen-HBM", "homogen", 20_000):
        "99944f45b9925f51c526ff0f89778c6cdf9f7af7377eb7ca9abf8af019ed1d51",
}


def _profile(frame, size_bytes, mpki, misses, stalls):
    """A minimal hand-built ObjectProfile for classifier unit tests.

    ``llc_mpki`` is a derived property, so the kilo-instruction count is
    back-computed from the requested MPKI.
    """
    return ObjectProfile(
        name=ObjectName(frames=(frame,)), label=f"obj{frame:#x}",
        size_bytes=size_bytes, accesses=max(1, misses * 10),
        llc_misses=misses, load_misses=misses, stall_cycles=stalls,
        kilo_instructions=(misses / mpki if mpki > 0 else 1.0))


class TestStockKeyStability:
    @pytest.mark.parametrize("fields,expect", sorted(PRE_API_KEYS.items()))
    def test_pinned_pre_api_key(self, fields, expect):
        workload, config, policy, n = fields
        assert RunSpec(workload, config, policy, n).key() == expect

    def test_stock_canonical_is_bare_string(self):
        for name in stock_policy_names():
            spec = RunSpec("mcf", "Heter-config1", name, N)
            assert spec.canonical()["policy"] == name

    def test_new_parameterless_policies_also_bare(self):
        # knapsack/ranker are not stock, but the same rule applies: no
        # params, no dict — future pins stay stable the same way.
        doc = RunSpec("mcf", "Heter-config1", "knapsack", N).canonical()
        assert doc["policy"] == "knapsack"

    def test_parameterized_policy_extends_canonical(self):
        bare = RunSpec("mcf", "Heter-config1", "knapsack", N)
        sized = RunSpec("mcf", "Heter-config1", "knapsack:fast_mb=128", N)
        assert sized.canonical()["policy"] == {
            "name": "knapsack", "params": {"fast_mb": 128}}
        assert bare.key() != sized.key()
        assert sized.key() != RunSpec(
            "mcf", "Heter-config1", "knapsack:fast_mb=64", N).key()


class TestPolicySpec:
    def test_parse_bare_name(self):
        spec = PolicySpec.parse("moca")
        assert spec.name == "moca" and spec.params == ()
        assert spec.canonical() == "moca"
        assert spec.label() == "moca"

    def test_parse_parameterized(self):
        spec = PolicySpec.parse("knapsack:fast_mb=128,greedy=true")
        assert spec.params_dict() == {"fast_mb": 128, "greedy": True}
        assert spec.label() == "knapsack[fast_mb=128,greedy=true]"

    def test_params_normalized_sorted(self):
        a = PolicySpec.of("knapsack", b=1, a=2)
        b = PolicySpec.of("knapsack", a=2, b=1)
        assert a == b and hash(a) == hash(b)

    def test_canonical_round_trip(self):
        for text in ("moca", "knapsack:fast_mb=128",
                     "ranker:alpha=0.5,tag=x"):
            spec = PolicySpec.parse(text)
            assert PolicySpec.from_canonical(spec.canonical()) == spec

    def test_bad_names_and_params_rejected(self):
        with pytest.raises(ValueError, match="bad policy name"):
            PolicySpec("Not A Name")
        with pytest.raises(ValueError, match="bad policy parameter"):
            PolicySpec.of("moca", **{"Bad-Key": 1})
        with pytest.raises(ValueError, match="expected name:key=value"):
            PolicySpec.parse("moca:oops")
        with pytest.raises(ValueError, match="scalar"):
            PolicySpec("moca", (("k", [1, 2]),))

    def test_runspec_normalizes_to_bare_string(self):
        # A parameterless PolicySpec collapses to the bare name so equal
        # cache keys mean equal in-memory specs too.
        spec = RunSpec("mcf", "Heter-config1", PolicySpec("moca"), N)
        assert spec.policy == "moca"
        assert spec.policy_label == "moca"
        via_str = RunSpec("mcf", "Heter-config1",
                          "knapsack:fast_mb=64", N)
        assert via_str.policy == PolicySpec.of("knapsack", fast_mb=64)
        assert via_str.policy_name == "knapsack"
        assert via_str.policy_label == "knapsack[fast_mb=64]"


class TestRegistry:
    def test_stock_and_shipped_policies_registered(self):
        assert stock_policy_names() == ("homogen", "heter-app", "moca")
        assert set(("knapsack", "ranker")) <= set(policy_names())

    def test_unknown_policy_error_names_choices(self):
        with pytest.raises(ValueError) as exc:
            policy_info("nonesuch")
        msg = str(exc.value)
        assert "unknown policy 'nonesuch'" in msg
        assert "moca" in msg and "register_policy" in msg

    def test_runspec_validates_against_registry(self):
        with pytest.raises(ValueError, match="unknown policy"):
            RunSpec("mcf", "Heter-config1", "nonesuch", N)

    def test_register_and_unregister_round_trip(self):
        @register_policy("test-all-pow", description="test-only")
        def _factory(spec, context):
            from repro.moca.allocation import MocaPolicy
            return MocaPolicy([{} for _ in context.app_names])

        try:
            assert "test-all-pow" in policy_names()
            assert not policy_info("test-all-pow").stock
            # Registration makes the name valid in a RunSpec and
            # buildable through the shim.
            RunSpec("mcf", "Heter-config1", "test-all-pow", N)
            p = make_policy("test-all-pow", ["mcf"], "ref", N)
            assert p.object_type(0, 7) is ObjectType.POW
        finally:
            unregister_policy("test-all-pow")
        assert "test-all-pow" not in policy_names()
        with pytest.raises(ValueError, match="unknown policy"):
            RunSpec("mcf", "Heter-config1", "test-all-pow", N)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_policy("moca")(lambda s, c: None)

    def test_stock_unregistration_refused(self):
        with pytest.raises(ValueError, match="stock"):
            unregister_policy("moca")

    def test_classifiers_satisfy_protocol(self):
        assert isinstance(ThresholdClassifier(), ClassificationPolicy)
        assert isinstance(KnapsackClassifier(), ClassificationPolicy)


class TestSharedThresholdSerialization:
    def test_round_trip(self):
        t = Thresholds(2.0, 40.0)
        assert thresholds_from_dict(thresholds_to_dict(t)) == t

    def test_runspec_and_sidecar_share_the_form(self):
        # RunSpec.canonical() and the InstrumentedApp sidecar must carry
        # the same dict shape, so a profile artefact can never drift from
        # the cache key that described it.
        from repro.moca.framework import MocaFramework
        from repro.moca.serialize import instrumented_to_dict

        t = Thresholds(2.0, 40.0)
        spec_form = RunSpec("mcf", "Heter-config1", "moca", N,
                            thresholds=t).canonical()["thresholds"]
        inst = MocaFramework(thresholds=t,
                             profile_accesses=N).instrument("mcf")
        sidecar_form = instrumented_to_dict(inst)["thresholds"]
        assert spec_form == sidecar_form == thresholds_to_dict(t)


class TestSelectFastTier:
    def test_density_order_wins(self):
        cands = [("sparse", 10.0, 100), ("dense", 10.0, 10)]
        assert select_fast_tier(cands, 10) == {"dense"}

    def test_straddler_included(self):
        # Fractional-knapsack flavour: the pick that crosses the budget
        # line is still taken (its tail spills page-granularly).
        cands = [("a", 100.0, 8), ("b", 10.0, 8), ("c", 1.0, 8)]
        assert select_fast_tier(cands, 12) == {"a", "b"}

    def test_zero_budget_chooses_nothing(self):
        assert select_fast_tier([("a", 5.0, 8)], 0) == set()

    def test_deterministic_tiebreak(self):
        cands = [("b", 1.0, 8), ("a", 1.0, 8)]
        assert select_fast_tier(cands, 1) == {"a"}


class TestKnapsackClassifier:
    #: hot-lat (LAT: 4 pages), warm-pow (POW with misses: 2 pages),
    #: cold-pow (POW, never misses: 2 pages).
    LUT = [
        _profile(0x10, 4 * PAGE_BYTES, mpki=30.0, misses=9_000,
                 stalls=400_000),
        _profile(0x20, 2 * PAGE_BYTES, mpki=0.5, misses=800,
                 stalls=9_000),
        _profile(0x30, 2 * PAGE_BYTES, mpki=0.0, misses=0,
                 stalls=0),
    ]

    def test_unlimited_budget_equals_threshold(self):
        knap = KnapsackClassifier().classify([self.LUT], UNLIMITED)
        thresh = ThresholdClassifier().classify([self.LUT], UNLIMITED)
        assert knap == thresh

    def test_binding_budget_equals_threshold(self):
        # The allocator's heat-ordered page-granular spill already
        # implements the fractional fill, so a binding budget changes
        # nothing — no demotion.
        budget = CapacityBudget(2 * PAGE_BYTES)  # less than hot-lat
        knap = KnapsackClassifier().classify([self.LUT], budget)
        thresh = ThresholdClassifier().classify([self.LUT], budget)
        assert knap == thresh

    def test_spare_capacity_promotes_missing_objects(self):
        budget = CapacityBudget(7 * PAGE_BYTES)  # 3 spare pages
        types = KnapsackClassifier().classify([self.LUT], budget)[0]
        by_label = {p.name: types[p.name] for p in self.LUT}
        assert by_label[self.LUT[0].name] is ObjectType.LAT
        # warm-pow misses and fits the spare 3 pages → promoted.
        assert by_label[self.LUT[1].name] is ObjectType.LAT
        # cold-pow never misses: promoting it buys nothing.
        assert by_label[self.LUT[2].name] is ObjectType.POW

    def test_promotion_never_overcommits(self):
        budget = CapacityBudget(5 * PAGE_BYTES)  # 1 spare page only
        types = KnapsackClassifier().classify([self.LUT], budget)[0]
        # warm-pow needs 2 pages but only 1 is spare — stays put.
        assert types[self.LUT[1].name] is ObjectType.POW

    def test_run_dominates_threshold_with_spare_capacity(self):
        knap = RunSpec("milc", "Heter-cap512", "knapsack", N)
        moca = RunSpec("milc", "Heter-cap512", "moca", N)
        from repro.sim.spec import run
        assert (run(knap).mem_access_cycles
                < run(moca).mem_access_cycles)


class TestBudgetResolution:
    def test_heterogeneous_config_supplies_lat_capacity(self):
        from repro.sim.config import ALL_SYSTEMS
        cfg = ALL_SYSTEMS["Heter-config1"]
        _, ctx = policy_context("moca", ["mcf"], "ref", N, config=cfg)
        assert ctx.budget.fast_bytes == cfg.fast_tier_bytes()
        assert not ctx.budget.unlimited

    def test_homogeneous_config_is_unlimited(self):
        from repro.sim.config import ALL_SYSTEMS
        _, ctx = policy_context("moca", ["mcf"], "ref", N,
                                config=ALL_SYSTEMS["Homogen-DDR3"])
        assert ctx.budget.unlimited

    def test_fast_mb_param_overrides_config(self):
        from repro.sim.config import ALL_SYSTEMS, CAPACITY_SCALE
        from repro.util.units import MIB
        _, ctx = policy_context(
            "knapsack:fast_mb=128", ["mcf"], "ref", N,
            config=ALL_SYSTEMS["Homogen-DDR3"])
        assert ctx.budget.fast_bytes == 128 * MIB // CAPACITY_SCALE

    def test_make_policy_shim_is_unlimited(self):
        # The legacy shim keeps the historical capacity-oblivious
        # behaviour: moca via make_policy matches moca via the registry
        # with an unlimited budget.
        shim = make_policy("moca", ["mcf"], "ref", N, profile_accesses=N)
        from repro.moca.policy import PolicyContext
        ctx = PolicyContext(app_names=("mcf",), input_name="ref",
                            n_accesses=N, profile_accesses=N)
        registry = build_policy("moca", ctx)
        assert shim.object_types == registry.object_types
        assert shim.object_heat == registry.object_heat


class TestRanker:
    PROFILE_N = 20_000

    def _classifier(self):
        from repro.moca.ranker import RankerClassifier
        return RankerClassifier.trained(profile_accesses=self.PROFILE_N)

    def test_training_is_deterministic_and_memoized(self):
        a = self._classifier().model
        b = self._classifier().model
        assert a is b  # lru_cache on identical (thresholds, accesses)
        assert a.w_intensive == b.w_intensive

    def test_held_out_accuracy_recorded_and_high(self):
        model = self._classifier().model
        assert set(model.held_out_apps) == {"disparity", "tracking",
                                            "stitch"}
        assert not (set(model.held_out_apps) & set(model.train_apps))
        # The threshold rule is learnable from these features; anything
        # below this bound means the features or fit regressed.
        assert model.held_out_accuracy >= 0.9

    def test_predictions_match_thresholds_on_held_out(self):
        model = self._classifier().model
        lut = profile_app("disparity", n_accesses=self.PROFILE_N).lut
        agree = sum(model.predict(p) is classify_object(p) for p in lut)
        assert agree >= len(lut) - 1

    def test_budget_demotes_lat_overflow(self):
        clf = self._classifier()
        lut = profile_app("mcf", n_accesses=self.PROFILE_N).lut
        unlimited = clf.classify([lut], UNLIMITED)[0]
        n_lat = sum(1 for t in unlimited.values() if t is ObjectType.LAT)
        assert n_lat >= 2  # mcf has several latency objects
        tight = clf.classify([lut], CapacityBudget(PAGE_BYTES))[0]
        kept = [n for n, t in tight.items() if t is ObjectType.LAT]
        assert len(kept) == 1  # straddler only; the rest demote to BW
        demoted = [n for n, t in tight.items()
                   if unlimited[n] is ObjectType.LAT and n not in kept]
        assert all(tight[n] is ObjectType.BW for n in demoted)


class TestWriteMix:
    def test_profiler_records_writes(self):
        lut = profile_app("mcf", n_accesses=20_000).lut
        assert any(p.writes > 0 for p in lut)
        assert all(0.0 <= p.write_frac <= 1.0 for p in lut)

    def test_write_frac_clamped(self):
        # Raw-trace writes include the cache-warmup prefix that the
        # per-object access counter excludes; the property clamps.
        p = _profile(0x40, PAGE_BYTES, 2.0, 10, 100)
        p.writes = p.accesses + 50
        assert p.write_frac == 1.0

    def test_merge_folds_writes(self):
        a = _profile(0x50, PAGE_BYTES, 2.0, 10, 100)
        a.writes = 30
        b = _profile(0x50, PAGE_BYTES, 2.0, 10, 100)
        b.writes = 10
        a.merge(b, weight=0.5)
        assert a.writes == 35
