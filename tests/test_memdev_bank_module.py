"""Tests for the bank state machine and the memory module model."""

import dataclasses

import pytest

from repro.memdev.bank import BankState
from repro.memdev.module import MemoryModule
from repro.memdev.presets import DDR3, HBM, LPDDR2, RLDRAM3
from repro.util.units import MIB


class TestBankState:
    def test_initial_state_closed(self):
        b = BankState()
        assert b.open_row is None
        assert not b.is_hit(0)

    def test_first_access_is_row_miss(self):
        b = BankState()
        assert b.access_latency(DDR3, 5) == DDR3.row_miss_latency

    def test_hit_after_open(self):
        b = BankState()
        b.service(DDR3, 5, 0)
        assert b.is_hit(5)
        assert b.access_latency(DDR3, 5) == DDR3.row_hit_latency

    def test_conflict_after_other_row(self):
        b = BankState()
        b.service(DDR3, 5, 0)
        assert b.access_latency(DDR3, 6) == DDR3.row_conflict_latency

    def test_row_hit_pipelines_at_tccd(self):
        b = BankState()
        b.service(DDR3, 5, 0)          # activate: bank busy until done
        start = b.ready_at
        done2 = b.service(DDR3, 5, start)  # hit: data at tCL...
        assert done2 == start + DDR3.tCL
        assert b.ready_at == start + DDR3.tCCD  # ...but bank free at tCCD

    def test_back_to_back_hits_stream(self):
        b = BankState()
        b.service(DDR3, 1, 0)
        t1 = b.ready_at
        b.service(DDR3, 1, t1)
        assert b.ready_at - t1 == DDR3.tCCD

    def test_trc_spacing_between_activates(self):
        b = BankState()
        b.service(DDR3, 1, 0)
        first_act = b.last_activate
        b.service(DDR3, 2, 0)
        assert b.last_activate - first_act >= DDR3.tRC

    def test_service_clamps_to_ready(self):
        b = BankState()
        b.service(DDR3, 1, 0)
        done = b.service(DDR3, 1, 0)  # asks for cycle 0, bank busy
        assert done >= DDR3.tCCD

    def test_refresh_closes_row_and_blocks(self):
        b = BankState()
        b.service(DDR3, 1, 0)
        end = b.refresh(DDR3, 100)
        assert b.open_row is None
        assert end >= 100 + DDR3.tRFC
        assert b.ready_at == end

    def test_monotone_time(self):
        """Service completions never go backwards."""
        b = BankState()
        last = 0
        for i, row in enumerate([1, 1, 2, 3, 2, 2, 1]):
            done = b.service(DDR3, row, i * 3)
            assert done >= last
            last = done

    def test_conflict_precharge_waits_for_tras(self):
        """The precharge of a row conflict may not begin before tRAS has
        elapsed since the row's activate — even when that pushes the next
        activate past the plain tRC window.  Integer-cycle rounding can
        make tRAS + tRP exceed tRC (derated or custom parts), which is
        exactly when the two guards diverge."""
        t = dataclasses.replace(DDR3, tRAS_ns=5.5, tRC_ns=8.0,
                                tRCD_ns=2.0)
        assert (t.tRAS, t.tRP, t.tRC) == (6, 3, 8)
        assert t.tRAS + t.tRP > t.tRC  # the roundings disagree
        b = BankState()
        b.service(t, 5, 0)  # ACT row 5 at cycle 0
        assert b.last_activate == 0
        done = b.service(t, 6, 0)  # conflict; bank ready again at 4
        # Precharge stalls until tRAS (cycle 6); the new activate lands
        # at 6 + tRP = 9.  The tRC window alone would have allowed 8.
        assert b.last_activate == 9
        assert done == 9 + t.tRCD + t.tCL


class TestMemoryModule:
    def test_decode_roundtrip_fields_in_range(self):
        m = MemoryModule(DDR3, 16 * MIB)
        for addr in (0, 64, 4096, 123456, 16 * MIB - 64):
            sub, bank, row = m.decode(addr)
            assert 0 <= sub < DDR3.n_subchannels
            assert 0 <= bank < DDR3.n_banks
            assert 0 <= row < DDR3.n_rows

    def test_consecutive_lines_same_row_until_boundary(self):
        m = MemoryModule(DDR3, 16 * MIB)
        rows = {m.decode(a)[2] for a in range(0, DDR3.effective_row_bytes, 64)}
        assert len(rows) == 1

    def test_sequential_access_sees_row_hits(self):
        m = MemoryModule(DDR3, 16 * MIB)
        t = 0
        for i in range(64):
            res = m.access(i * 64, t)
            t = res.done
        assert m.row_hit_rate > 0.8

    def test_random_access_sees_row_conflicts(self):
        import numpy as np
        rng = np.random.default_rng(7)
        m = MemoryModule(DDR3, 16 * MIB)
        t = 0
        for a in rng.integers(0, 16 * MIB // 64, 200) * 64:
            res = m.access(int(a), t)
            t = res.done
        assert m.row_hit_rate < 0.3

    def test_latency_includes_queue_and_service(self):
        m = MemoryModule(DDR3, 16 * MIB)
        r1 = m.access(0, 0)
        assert r1.queue_cycles == 0
        assert r1.latency == r1.service_cycles
        # Same bank, same cycle: the second request queues.
        r2 = m.access(DDR3.effective_row_bytes * DDR3.n_banks, 0)
        assert r2.done > r1.start

    def test_rldram_faster_than_lpddr_random(self):
        import numpy as np
        rng = np.random.default_rng(3)
        addrs = (rng.integers(0, 8 * MIB // 64, 300) * 64).tolist()
        lat = {}
        for dev in (RLDRAM3, LPDDR2):
            m = MemoryModule(dev, 8 * MIB)
            total = 0
            t = 0
            for a in addrs:
                res = m.access(a, t)
                total += res.latency
                t = res.done + 50
            lat[dev.name] = total
        assert lat["RLDRAM3"] * 3 < lat["LPDDR2"]

    def test_hbm_subchannels_parallelize(self):
        """Concurrent requests to different subchannels overlap in HBM."""
        m = MemoryModule(HBM, 16 * MIB)
        r1 = m.access(0, 0)
        r2 = m.access(HBM.effective_row_bytes, 0)  # next subchannel
        assert r2.queue_cycles == 0 or r2.done <= r1.done + HBM.tCL

    def test_refresh_applies_after_trefi(self):
        m = MemoryModule(DDR3, 16 * MIB)
        m.access(0, 0)
        res = m.access(0, DDR3.tREFI + 1)  # row was open, refresh closes it
        assert not res.row_hit

    def test_stats_accumulate(self):
        m = MemoryModule(DDR3, 16 * MIB)
        m.access(0, 0)
        m.access(64, 10, is_write=True)
        assert m.n_accesses == 2
        assert m.n_reads == 1
        assert m.n_writes == 1
        assert m.bytes_transferred == 128
        assert m.bus_busy_cycles > 0
        assert m.bank_busy_cycles > 0

    def test_reset_stats_keeps_timing_state(self):
        m = MemoryModule(DDR3, 16 * MIB)
        m.access(0, 0)
        m.reset_stats()
        assert m.n_accesses == 0
        res = m.access(0, 1_000)
        assert res.row_hit  # the row stayed open across the reset

    def test_utilization_bounded(self):
        m = MemoryModule(LPDDR2, 8 * MIB)
        t = 0
        for i in range(100):
            res = m.access(i * 4096, t)
            t = res.done
        assert 0.0 < m.utilization(t) <= 1.0
        assert m.utilization(0) == 0.0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            MemoryModule(DDR3, 0)
