"""Tests for the OS substrate: frame pools, page table, TLB, allocator."""

import numpy as np
import pytest

from repro.trace.events import PAGE_BYTES
from repro.vm.allocator import OSPageAllocator
from repro.vm.heap import FALLBACK_CHAINS, ObjectType, TypedHeap
from repro.vm.pagetable import PageTable, TLB
from repro.vm.physmem import FramePool, OutOfMemory
from repro.util.units import MIB


class TestFramePool:
    def test_sequential_allocation(self):
        p = FramePool(4 * PAGE_BYTES, group=0)
        assert [p.allocate() for _ in range(4)] == [0, 1, 2, 3]

    def test_exhaustion_returns_none(self):
        p = FramePool(PAGE_BYTES, group=0)
        assert p.allocate() == 0
        assert p.allocate() is None
        assert p.full

    def test_free_and_reuse(self):
        p = FramePool(2 * PAGE_BYTES, group=0)
        f = p.allocate()
        p.allocate()
        p.free(f)
        assert not p.full
        assert p.allocate() == f

    def test_free_validates(self):
        p = FramePool(2 * PAGE_BYTES, group=0)
        with pytest.raises(ValueError):
            p.free(1)  # never allocated

    def test_utilization(self):
        p = FramePool(4 * PAGE_BYTES, group=0)
        p.allocate()
        assert p.utilization == pytest.approx(0.25)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            FramePool(100, group=0)


class TestPageTable:
    def test_map_and_lookup(self):
        pt = PageTable()
        pt.map_page(10, group=1, frame=5)
        assert pt.lookup(10) == (1, 5)
        assert 10 in pt
        assert len(pt) == 1

    def test_double_map_rejected(self):
        pt = PageTable()
        pt.map_page(10, 0, 0)
        with pytest.raises(ValueError):
            pt.map_page(10, 0, 1)

    def test_page_fault(self):
        with pytest.raises(KeyError, match="page fault"):
            PageTable().lookup(3)

    def test_translate_lines(self):
        pt = PageTable()
        pt.map_page(0, group=0, frame=7)
        pt.map_page(1, group=1, frame=2)
        vlines = np.asarray([64, PAGE_BYTES + 128])
        groups, gaddr = pt.translate_lines(vlines)
        assert groups.tolist() == [0, 1]
        assert gaddr.tolist() == [7 * PAGE_BYTES + 64, 2 * PAGE_BYTES + 128]

    def test_translate_unmapped_raises(self):
        pt = PageTable()
        pt.map_page(0, 0, 0)
        with pytest.raises(KeyError, match="page fault"):
            pt.translate_lines(np.asarray([5 * PAGE_BYTES]))

    def test_translate_after_incremental_maps(self):
        pt = PageTable()
        pt.map_page(0, 0, 0)
        pt.translate_lines(np.asarray([0]))
        pt.map_page(1, 0, 1)  # invalidates the frozen index
        groups, gaddr = pt.translate_lines(np.asarray([PAGE_BYTES]))
        assert gaddr[0] == PAGE_BYTES

    def test_pages_in_group(self):
        pt = PageTable()
        pt.map_page(0, 0, 0)
        pt.map_page(1, 1, 0)
        pt.map_page(2, 1, 1)
        assert pt.pages_in_group(1) == 2


class TestTLB:
    def test_hit_after_touch(self):
        t = TLB(entries=4)
        assert not t.access(1)
        assert t.access(1)

    def test_lru_eviction(self):
        t = TLB(entries=2)
        t.access(1)
        t.access(2)
        t.access(1)   # 1 MRU
        t.access(3)   # evicts 2
        assert t.access(1)
        assert not t.access(2)

    def test_hit_rate_on_stream(self):
        t = TLB(entries=64)
        vlines = np.arange(1000) % 10 * PAGE_BYTES
        assert t.simulate_stream(vlines) > 0.9

    def test_entries_validated(self):
        with pytest.raises(ValueError):
            TLB(entries=0)


class TestTypedHeap:
    def test_default_type(self):
        h = TypedHeap()
        assert h.type_of(42) == ObjectType.POW

    def test_set_and_get(self):
        h = TypedHeap()
        h.set_type(1, ObjectType.LAT)
        assert h.type_of(1) == ObjectType.LAT

    def test_partition_counts(self):
        h = TypedHeap()
        h.set_type(1, ObjectType.LAT)
        h.set_type(2, ObjectType.LAT)
        h.set_type(3, ObjectType.BW)
        assert h.partition_counts() == {
            ObjectType.LAT: 2, ObjectType.BW: 1, ObjectType.POW: 0}

    def test_chains_cover_all_types(self):
        for typ in ObjectType:
            assert FALLBACK_CHAINS[typ][0] in ("lat", "bw", "pow")

    def test_bw_falls_back_to_pow_first(self):
        """Sec. III-C: the next best module for HBM is LPDDR."""
        chain = FALLBACK_CHAINS[ObjectType.BW]
        assert chain.index("pow") < chain.index("lat")


def _pools(caps):
    return {i: FramePool(c, group=i) for i, c in enumerate(caps)}


class TestOSPageAllocator:
    def test_best_fit_first(self):
        alloc = OSPageAllocator(_pools([MIB, MIB, MIB]),
                                roles={"lat": 0, "bw": 1, "pow": 2})
        g, f = alloc.allocate_page(0, ObjectType.LAT)
        assert g == 0
        g, f = alloc.allocate_page(1, ObjectType.BW)
        assert g == 1
        g, f = alloc.allocate_page(2, ObjectType.POW)
        assert g == 2

    def test_fallback_when_full(self):
        alloc = OSPageAllocator(_pools([PAGE_BYTES, MIB, MIB]),
                                roles={"lat": 0, "bw": 1, "pow": 2})
        alloc.allocate_page(0, ObjectType.LAT)   # fills RL
        g, _ = alloc.allocate_page(1, ObjectType.LAT)
        assert g == 1  # spilled to bw
        assert alloc.stats.spills[ObjectType.LAT] == 1

    def test_bw_spills_to_pow_before_lat(self):
        alloc = OSPageAllocator(_pools([MIB, PAGE_BYTES, MIB]),
                                roles={"lat": 0, "bw": 1, "pow": 2})
        alloc.allocate_page(0, ObjectType.BW)
        g, _ = alloc.allocate_page(1, ObjectType.BW)
        assert g == 2

    def test_out_of_memory(self):
        alloc = OSPageAllocator(_pools([PAGE_BYTES]), roles={"main": 0})
        alloc.allocate_page(0, ObjectType.POW)
        with pytest.raises(OutOfMemory):
            alloc.allocate_page(1, ObjectType.POW)

    def test_missing_roles_are_skipped(self):
        alloc = OSPageAllocator(_pools([MIB]), roles={"main": 0})
        for typ in ObjectType:
            assert alloc.chain_for(typ) == [0]

    def test_chain_includes_all_groups_as_last_resort(self):
        alloc = OSPageAllocator(_pools([MIB, MIB]),
                                roles={"lat": 0})  # group 1 has no role
        assert set(alloc.chain_for(ObjectType.LAT)) == {0, 1}

    def test_roles_must_reference_pools(self):
        with pytest.raises(ValueError):
            OSPageAllocator(_pools([MIB]), roles={"lat": 5})

    def test_stats_record_placements(self):
        alloc = OSPageAllocator(_pools([MIB, MIB, MIB]),
                                roles={"lat": 0, "bw": 1, "pow": 2})
        for vp in range(5):
            alloc.allocate_page(vp, ObjectType.POW)
        assert alloc.stats.placed[ObjectType.POW][2] == 5
        assert alloc.stats.total_pages == 5
        assert alloc.stats.spill_rate(ObjectType.POW) == 0.0

    def test_free_frames_accounting(self):
        alloc = OSPageAllocator(_pools([2 * PAGE_BYTES]), roles={"main": 0})
        alloc.allocate_page(0, ObjectType.POW)
        assert alloc.free_frames() == {0: 1}

    def test_needs_pools(self):
        with pytest.raises(ValueError):
            OSPageAllocator({}, roles={})
