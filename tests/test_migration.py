"""Tests for the page-migration baseline (mechanism + runner)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import HETER_CONFIG1, HOMOGEN_DDR3
from repro.sim.migration import run_single_migration
from repro.trace.events import PAGE_BYTES
from repro.vm.allocator import OSPageAllocator
from repro.vm.heap import ObjectType
from repro.vm.migration import HotPageMigrator, MigrationConfig
from repro.vm.pagetable import PageTable
from repro.vm.physmem import FramePool
from repro.memctrl.system import ChannelGroup, MemorySystem
from repro.memdev.presets import LPDDR2, RLDRAM3
from repro.util.units import MIB


@pytest.fixture
def setup():
    memsys = MemorySystem({
        "lat": ChannelGroup(RLDRAM3, 1, 1 * MIB, name="RL"),
        "pow": ChannelGroup(LPDDR2, 1, 64 * MIB, name="LP"),
    })
    pools = {0: FramePool(1 * MIB, 0), 1: FramePool(64 * MIB, 1)}
    alloc = OSPageAllocator(pools, {"lat": 0, "pow": 1}, PageTable())
    return memsys, alloc


class TestHotPageMigrator:
    def _populate(self, alloc, n_pages):
        for vp in range(n_pages):
            alloc.allocate_page(vp, ObjectType.POW)

    def test_promotes_hottest_pages(self, setup):
        memsys, alloc = setup
        self._populate(alloc, 16)
        mig = HotPageMigrator(alloc, memsys,
                              MigrationConfig(max_migrations_per_epoch=2))
        # Page 3 is by far the hottest, then page 7.
        vpages = np.asarray([3] * 50 + [7] * 20 + [1, 2, 4])
        overhead = mig.end_epoch(vpages)
        assert overhead > 0
        assert alloc.page_table.lookup(3)[0] == 0
        assert alloc.page_table.lookup(7)[0] == 0
        assert alloc.page_table.lookup(1)[0] == 1
        assert mig.stats.n_migrations == 2

    def test_old_frames_freed(self, setup):
        memsys, alloc = setup
        self._populate(alloc, 4)
        before = alloc.pools[1].n_allocated
        mig = HotPageMigrator(alloc, memsys)
        mig.end_epoch(np.asarray([0] * 10))
        assert alloc.pools[1].n_allocated == before - 1

    def test_swaps_when_target_full(self, setup):
        memsys, alloc = setup
        self._populate(alloc, 600)
        mig = HotPageMigrator(alloc, memsys,
                              MigrationConfig(max_migrations_per_epoch=512))
        # Fill the 256-frame RL module with warm pages...
        mig.end_epoch(np.repeat(np.arange(256), 2))
        assert alloc.pools[0].frames_left == 0
        # ...then a much hotter page must displace a resident one.
        mig.end_epoch(np.asarray([400] * 99))
        assert alloc.page_table.lookup(400)[0] == 0
        assert mig.stats.n_swaps >= 1

    def test_no_swap_for_colder_page(self, setup):
        memsys, alloc = setup
        self._populate(alloc, 600)
        mig = HotPageMigrator(alloc, memsys,
                              MigrationConfig(max_migrations_per_epoch=512))
        mig.end_epoch(np.repeat(np.arange(256), 10))  # heat 10 each
        swaps_before = mig.stats.n_swaps
        mig.end_epoch(np.asarray([500] * 3))  # heat 3 < resident 10
        assert mig.stats.n_swaps == swaps_before
        assert alloc.page_table.lookup(500)[0] == 1

    def test_empty_epoch_noop(self, setup):
        memsys, alloc = setup
        mig = HotPageMigrator(alloc, memsys)
        assert mig.end_epoch(np.asarray([], dtype=np.int64)) == 0

    def test_requires_target_role(self, setup):
        memsys, alloc = setup
        with pytest.raises(ValueError):
            HotPageMigrator(alloc, memsys, MigrationConfig(target_role="bw"))

    def test_copy_charges_both_buses(self, setup):
        memsys, alloc = setup
        self._populate(alloc, 4)
        mig = HotPageMigrator(alloc, memsys)
        before = [g.modules[0].bus_busy_cycles for g in memsys.groups]
        mig.end_epoch(np.asarray([0] * 10))
        after = [g.modules[0].bus_busy_cycles for g in memsys.groups]
        assert after[0] > before[0] and after[1] > before[1]
        assert mig.stats.bytes_copied == 2 * PAGE_BYTES


class TestMigrationRunner:
    def test_produces_metrics_and_stats(self):
        m, stats = run_single_migration(
            "gcc", HETER_CONFIG1, MigrationConfig(epoch_misses=300),
            n_accesses=20_000)
        assert m.policy == "migration"
        assert m.exec_cycles > 0
        assert stats.n_epochs >= 2
        assert stats.overhead_cycles > 0

    def test_migration_moves_hot_pages_to_rl(self):
        _, stats = run_single_migration(
            "gcc", HETER_CONFIG1, MigrationConfig(epoch_misses=300),
            n_accesses=20_000)
        assert stats.n_migrations > 0

    def test_moca_beats_migration_on_chase_heavy_app(self):
        """The paper's argument: allocation-time placement beats runtime
        migration, which keeps paying copy costs and only ever catches a
        few pages of a large pointer-chased object."""
        from repro.sim.spec import RunSpec, run
        mig, _ = run_single_migration("mcf", HETER_CONFIG1,
                                      n_accesses=30_000)
        moca = run(RunSpec("mcf", "Heter-config1", "moca", 30_000))
        assert moca.mem_access_cycles < mig.mem_access_cycles
        assert moca.exec_cycles < mig.exec_cycles

    def test_homogeneous_target_rejected(self):
        with pytest.raises(ValueError):
            run_single_migration("gcc", HOMOGEN_DDR3, n_accesses=5_000)

    def test_runspec_migration_field_dispatches(self):
        """The runner is the thin wrapper now: a RunSpec carrying a
        MigrationConfig routes through run() (and hence the engine's
        cache/telemetry) and reproduces the wrapper's results."""
        from repro.sim.spec import RunSpec, run
        from repro.vm.migration import MigrationStats
        cfg = MigrationConfig(epoch_misses=300)
        spec = RunSpec("gcc", "Heter-config1", "homogen", 20_000,
                       migration=cfg)
        m = run(spec)
        assert m.policy == "migration"
        assert m.meta["migration_config"] == cfg.to_dict()
        wrapper_m, wrapper_stats = run_single_migration(
            "gcc", HETER_CONFIG1, cfg, n_accesses=20_000)
        assert MigrationStats.from_dict(m.meta["migration"]) == wrapper_stats
        assert m.exec_cycles == wrapper_m.exec_cycles

    def test_migration_needs_homogen_policy(self):
        from repro.sim.spec import RunSpec
        with pytest.raises(ValueError, match="homogen"):
            RunSpec("gcc", "Heter-config1", "moca", 20_000,
                    migration=MigrationConfig())


class TestSerialization:
    stats_ints = st.integers(0, 2**40)

    @given(st.builds(lambda *v: v, *[stats_ints] * 6))
    @settings(max_examples=60, deadline=None)
    def test_migration_stats_roundtrip_is_lossless(self, values):
        from repro.vm.migration import MigrationStats
        stats = MigrationStats(*values)
        clone = MigrationStats.from_dict(stats.to_dict())
        assert clone == stats
        assert clone.overhead_cycles == stats.overhead_cycles

    @given(epoch=st.integers(1, 10**6), cap=st.integers(1, 4096),
           shoot=st.integers(0, 10**5))
    @settings(max_examples=40, deadline=None)
    def test_migration_config_roundtrip(self, epoch, cap, shoot):
        cfg = MigrationConfig(epoch_misses=epoch,
                              max_migrations_per_epoch=cap,
                              shootdown_cycles=shoot)
        assert MigrationConfig.from_dict(cfg.to_dict()) == cfg
