"""Tests for the top-level command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_apps_lists_suite(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for app in ("mcf", "lbm", "stitch"):
            assert app in out
        assert "2L1B1N" in out

    def test_systems_lists_configs(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        assert "Homogen-DDR3" in out
        assert "Heter-config1" in out
        assert "RLDRAM3" in out

    def test_profile(self, capsys):
        assert main(["profile", "gcc", "--accesses", "20000"]) == 0
        out = capsys.readouterr().out
        assert "LLC MPKI" in out
        assert "rtl_pool" in out
        assert "segments:" in out

    def test_run_single(self, capsys):
        assert main(["run", "sift", "--system", "Homogen-DDR3",
                     "--policy", "homogen", "--accesses", "15000"]) == 0
        out = capsys.readouterr().out
        assert "memory access time" in out
        assert "memory EDP" in out

    def test_run_moca_on_hetero(self, capsys):
        assert main(["run", "gcc", "--system", "Heter-config1",
                     "--policy", "moca", "--accesses", "15000"]) == 0
        assert "policy=moca" in capsys.readouterr().out

    def test_runmix(self, capsys):
        assert main(["runmix", "1B3N", "--system", "Homogen-DDR3",
                     "--policy", "homogen", "--accesses", "8000"]) == 0
        assert "workload=1B3N" in capsys.readouterr().out

    def test_run_json_output(self, capsys):
        import json
        assert main(["run", "stitch", "--system", "Homogen-DDR3",
                     "--policy", "homogen", "--accesses", "10000",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["workload"] == "stitch"
        assert doc["exec_cycles"] > 0
        assert len(doc["per_core"]) == 1
        assert "latency_p99" in doc

    def test_experiments_forwarding(self, capsys):
        assert main(["experiments", "table1"]) == 0
        assert "ROB entries" in capsys.readouterr().out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nginx"])

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "mcf", "--system", "Optane"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
