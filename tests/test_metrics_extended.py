"""Tests for weighted speedup/fairness and SimPoint-weighted profiling."""

import pytest

from repro.moca.profiler import MemoryObjectProfiler
from repro.sim.config import HOMOGEN_DDR3
from repro.sim.metrics import fairness, weighted_speedup
from repro.sim.spec import RunSpec, run
from repro.trace.builder import TraceBuilder
from repro.util.rng import stream
from repro.workloads.mixes import mix

NM = 10_000


@pytest.fixture(scope="module")
def shared_and_alone():
    workload = mix("1B3N")
    shared = run(RunSpec("1B3N", "Homogen-DDR3", "homogen", NM))
    alone = [run(RunSpec(a, "Homogen-DDR3", "homogen", NM))
             for a in workload.apps]
    return shared, alone


class TestWeightedSpeedup:
    def test_bounded_by_core_count(self, shared_and_alone):
        shared, alone = shared_and_alone
        ws = weighted_speedup(shared, alone)
        assert 0 < ws <= shared.n_cores + 0.01

    def test_contention_lowers_ws(self, shared_and_alone):
        """Sharing a memory system cannot beat running alone."""
        shared, alone = shared_and_alone
        ws = weighted_speedup(shared, alone)
        assert ws < shared.n_cores

    def test_fairness_in_unit_interval(self, shared_and_alone):
        shared, alone = shared_and_alone
        f = fairness(shared, alone)
        assert 0 < f <= 1.0

    def test_length_validated(self, shared_and_alone):
        shared, alone = shared_and_alone
        with pytest.raises(ValueError):
            weighted_speedup(shared, alone[:2])
        with pytest.raises(ValueError):
            fairness(shared, alone[:1])


class TestWeightedProfiling:
    def _trace(self, key):
        from repro.trace.builder import ObjectBehavior
        from repro.util.units import MIB
        b = [ObjectBehavior("hot", 4 * MIB, 1.0, pattern="rand",
                            gap_mean=8, site=1)]
        return TraceBuilder(b).build(15_000, stream("simpoint", key))

    def test_single_window_equals_plain_profile(self):
        prof = MemoryObjectProfiler()
        t = self._trace("w1")
        plain = prof.profile_trace(t, "app")
        weighted = MemoryObjectProfiler().profile_windows([(t, 1.0)], "app")
        assert weighted.app_mpki == pytest.approx(plain.app_mpki, rel=0.01)

    def test_weights_interpolate(self):
        """A 50/50 blend of two windows lands between the extremes."""
        t1, t2 = self._trace("w1"), self._trace("w2")
        p1 = MemoryObjectProfiler().profile_trace(t1, "app")
        p2 = MemoryObjectProfiler().profile_trace(t2, "app")
        blend = MemoryObjectProfiler().profile_windows(
            [(t1, 0.5), (t2, 0.5)], "app")
        lo, hi = sorted([p1.app_mpki, p2.app_mpki])
        assert lo * 0.99 <= blend.app_mpki <= hi * 1.01

    def test_dominant_weight_dominates(self):
        t1, t2 = self._trace("w1"), self._trace("w2")
        p1 = MemoryObjectProfiler().profile_trace(t1, "app")
        blend = MemoryObjectProfiler().profile_windows(
            [(t1, 0.999), (t2, 0.001)], "app")
        assert blend.app_mpki == pytest.approx(p1.app_mpki, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryObjectProfiler().profile_windows([], "app")
        t = self._trace("w1")
        with pytest.raises(ValueError):
            MemoryObjectProfiler().profile_windows([(t, 0.0)], "app")

    def test_segment_mpki_blended(self):
        t1, t2 = self._trace("w1"), self._trace("w2")
        blend = MemoryObjectProfiler().profile_windows(
            [(t1, 0.5), (t2, 0.5)], "app")
        assert set(blend.segment_mpki) == {"stack", "code", "global"}
