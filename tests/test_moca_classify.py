"""Tests for the Fig. 5 threshold classifier."""

import pytest

from repro.moca.classify import (
    APP_THRESHOLDS,
    DEFAULT_THRESHOLDS,
    Thresholds,
    class_letter_to_type,
    classify_metrics,
    type_to_class_letter,
)
from repro.vm.heap import ObjectType


class TestThresholds:
    def test_paper_defaults(self):
        """Sec. IV-C: Thr_Lat = 1 MPKI, Thr_BW = 20 stall cycles/miss."""
        assert DEFAULT_THRESHOLDS.thr_lat == 1.0
        assert DEFAULT_THRESHOLDS.thr_bw == 20.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Thresholds(thr_lat=-1)
        with pytest.raises(ValueError):
            Thresholds(thr_bw=-0.1)

    def test_app_thresholds_higher_lat_bar(self):
        assert APP_THRESHOLDS.thr_lat > DEFAULT_THRESHOLDS.thr_lat


class TestClassifyMetrics:
    """The Fig. 5 quadrant map."""

    def test_low_mpki_is_pow(self):
        assert classify_metrics(0.5, 100.0) == ObjectType.POW

    def test_boundary_mpki_is_pow(self):
        # Fig. 5: objects with MPKI *greater than* Thr_Lat are intensive.
        assert classify_metrics(1.0, 100.0) == ObjectType.POW

    def test_high_mpki_high_stall_is_lat(self):
        assert classify_metrics(50.0, 45.0) == ObjectType.LAT

    def test_high_mpki_low_stall_is_bw(self):
        assert classify_metrics(50.0, 10.0) == ObjectType.BW

    def test_boundary_stall_is_bw(self):
        # Stall strictly greater than Thr_BW -> latency-sensitive.
        assert classify_metrics(50.0, 20.0) == ObjectType.BW

    def test_custom_thresholds(self):
        t = Thresholds(thr_lat=5.0, thr_bw=40.0)
        assert classify_metrics(3.0, 100.0, t) == ObjectType.POW
        assert classify_metrics(10.0, 30.0, t) == ObjectType.BW
        assert classify_metrics(10.0, 50.0, t) == ObjectType.LAT

    def test_quadrants_cover_plane(self):
        """Every (mpki, stall) point classifies to exactly one type."""
        for mpki in (0.0, 0.5, 1.0, 2.0, 100.0):
            for stall in (0.0, 10.0, 20.0, 21.0, 500.0):
                assert classify_metrics(mpki, stall) in ObjectType


class TestLetters:
    def test_roundtrip(self):
        for typ in ObjectType:
            assert class_letter_to_type(type_to_class_letter(typ)) is typ

    def test_mapping(self):
        assert type_to_class_letter(ObjectType.LAT) == "L"
        assert type_to_class_letter(ObjectType.BW) == "B"
        assert type_to_class_letter(ObjectType.POW) == "N"

    def test_bad_letter(self):
        with pytest.raises(ValueError):
            class_letter_to_type("Z")
