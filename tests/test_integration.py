"""Integration tests: the full pipeline and the paper's key behaviours.

These run at reduced fidelity (short traces), so assertions are the
*qualitative* shapes the paper reports, with margins; the full-strength
numbers live in the benchmark harness and EXPERIMENTS.md.
"""

import pytest

from repro.moca.classify import classify_object, type_to_class_letter
from repro.moca.profiler import profile_app
from repro.sim.config import (
    HETER_CONFIG1,
    HOMOGEN_DDR3,
    HOMOGEN_HBM,
    HOMOGEN_LP,
    HOMOGEN_RL,
)
from repro.sim.spec import RunSpec, run
from repro.vm.heap import ObjectType
from repro.workloads.spec import APPS

N = 120_000   # single-core traces (needs warm caches for N apps)
NM = 30_000   # per-core traces for multicore tests


@pytest.fixture(scope="module")
def single_runs():
    """One shared sweep over a few representative apps and all systems."""
    apps = ("mcf", "lbm", "gcc", "disparity")
    systems = [
        ("DDR3", HOMOGEN_DDR3, "homogen"),
        ("RL", HOMOGEN_RL, "homogen"),
        ("HBM", HOMOGEN_HBM, "homogen"),
        ("LP", HOMOGEN_LP, "homogen"),
        ("HetA", HETER_CONFIG1, "heter-app"),
        ("MOCA", HETER_CONFIG1, "moca"),
    ]
    return {
        (app, label): run(RunSpec(app, cfg.name, pol, N))
        for app in apps for label, cfg, pol in systems
    }


class TestTableIIIClassification:
    """Profiling + classification must reproduce the paper's classes."""

    @pytest.mark.parametrize("app,expected", sorted(
        (n, s.paper_class) for n, s in APPS.items()))
    def test_app_class(self, app, expected):
        from repro.moca.classify import classify_application
        p = profile_app(app, "train", N)
        letter = {"lat": "L", "bw": "B", "pow": "N"}[
            classify_application(p.lut).value]
        assert letter == expected

    def test_disparity_object_split(self):
        """Sec. VI-A: disparity's two major objects classify L and B."""
        p = profile_app("disparity", "train", N)
        classes = {prof.label.split(".")[1]:
                   type_to_class_letter(classify_object(prof))
                   for prof in p.lut}
        assert classes["sad_cost"] == "L"
        assert classes["img_pyramid"] == "B"

    def test_gcc_has_promotable_object(self):
        """Sec. VI-A: gcc is N overall but one object exceeds Thr_Lat."""
        p = profile_app("gcc", "train", N)
        classes = [classify_object(prof) for prof in p.lut]
        assert ObjectType.LAT in classes
        assert classes.count(ObjectType.POW) >= 2

    def test_mser_few_hot_objects(self):
        """Fig. 2: milc/mser have only a few memory-intensive objects."""
        p = profile_app("mser", "train", N)
        very_hot = [prof for prof in p.lut if prof.llc_mpki > 10.0]
        cool = [prof for prof in p.lut if prof.llc_mpki < 5.0]
        assert 1 <= len(very_hot) <= 3
        assert len(cool) >= 1

    def test_segments_cache_friendly(self):
        """Fig. 16: stack/code MPKI well below the heap's."""
        for app in ("mcf", "lbm"):
            p = profile_app(app, "train", N)
            assert max(p.segment_mpki.values()) < p.app_mpki / 10


class TestSingleCoreShapes:
    """Paper Fig. 8/9 orderings (single applications)."""

    def test_rl_fastest_lp_slowest(self, single_runs):
        for app in ("mcf", "lbm", "gcc"):
            t = {lab: single_runs[(app, lab)].mem_access_cycles
                 for lab in ("DDR3", "RL", "HBM", "LP")}
            assert t["RL"] < t["HBM"] <= t["DDR3"] * 1.05
            assert t["LP"] > t["DDR3"]

    def test_rl_power_highest_lp_lowest(self, single_runs):
        for app in ("mcf", "lbm"):
            p = {lab: single_runs[(app, lab)].mem_power_w
                 for lab in ("DDR3", "RL", "HBM", "LP")}
            assert p["RL"] == max(p.values())
            assert p["LP"] == min(p.values())

    def test_moca_beats_ddr3(self, single_runs):
        """MOCA beats DDR3 on EDP for every app, and on access time for
        the latency-class apps.  A pure-streaming app (lbm) may tie on
        raw time: four hashed DDR3 channels match one HBM channel's
        bandwidth single-core — the paper's win there is efficiency."""
        for app in ("mcf", "lbm", "gcc", "disparity"):
            moca = single_runs[(app, "MOCA")]
            base = single_runs[(app, "DDR3")]
            assert moca.memory_edp < base.memory_edp
            limit = 1.05 if app == "lbm" else 1.0
            assert moca.mem_access_cycles < base.mem_access_cycles * limit

    def test_moca_at_or_below_heter_app(self, single_runs):
        """MOCA >= Heter-App on EDP for these apps (paper allows small
        per-app regressions, e.g. milc/mser, but not on these four)."""
        for app in ("mcf", "gcc", "disparity"):
            moca = single_runs[(app, "MOCA")]
            het = single_runs[(app, "HetA")]
            assert moca.memory_edp <= het.memory_edp * 1.02

    def test_disparity_anecdote(self, single_runs):
        """Sec. VI-A: object-level beats app-level for disparity because
        Heter-App wastes RLDRAM on the first-instantiated object."""
        moca = single_runs[("disparity", "MOCA")]
        het = single_runs[("disparity", "HetA")]
        assert moca.mem_access_cycles < het.mem_access_cycles

    def test_gcc_heter_app_all_lpddr(self, single_runs):
        """Sec. VI-A: Heter-App puts all of gcc in LPDDR (N class), so
        MOCA's RLDRAM promotion of rtl_pool wins performance."""
        moca = single_runs[("gcc", "MOCA")]
        het = single_runs[("gcc", "HetA")]
        assert moca.mem_access_cycles < het.mem_access_cycles * 0.8


class TestMulticoreShapes:
    """Paper Fig. 10–13 orderings (multi-programmed workload sets)."""

    @pytest.fixture(scope="class")
    def runs_2l1b1n(self):
        return {
            lab: run(RunSpec("2L1B1N", cfg.name, pol, NM))
            for lab, cfg, pol in (
                ("DDR3", HOMOGEN_DDR3, "homogen"),
                ("LP", HOMOGEN_LP, "homogen"),
                ("HetA", HETER_CONFIG1, "heter-app"),
                ("MOCA", HETER_CONFIG1, "moca"),
            )
        }

    def test_moca_beats_heter_app(self, runs_2l1b1n):
        assert (runs_2l1b1n["MOCA"].mem_access_cycles
                < runs_2l1b1n["HetA"].mem_access_cycles)
        assert (runs_2l1b1n["MOCA"].memory_edp
                < runs_2l1b1n["HetA"].memory_edp)

    def test_moca_beats_ddr3_on_edp(self, runs_2l1b1n):
        assert (runs_2l1b1n["MOCA"].memory_edp
                < runs_2l1b1n["DDR3"].memory_edp)

    def test_lp_slowest(self, runs_2l1b1n):
        assert (runs_2l1b1n["LP"].mem_access_cycles
                == max(m.mem_access_cycles for m in runs_2l1b1n.values()))

    def test_system_perf_moca_better_than_heta(self, runs_2l1b1n):
        assert (runs_2l1b1n["MOCA"].exec_cycles
                <= runs_2l1b1n["HetA"].exec_cycles * 1.02)

    def test_memory_capacity_never_exhausted(self):
        """Every mix must fit the scaled 256 MB total (with ref growth)."""
        from repro.workloads.inputs import build_app_trace
        from repro.workloads.mixes import MIX_NAMES, mix
        from repro.trace.events import PAGE_BYTES
        budget = 256 * (1 << 20)
        for name in MIX_NAMES:
            total = 0
            for app in mix(name).apps:
                lay = build_app_trace(app, "ref", 5_000).layout
                total += sum(len(r.pages()) * PAGE_BYTES
                             for r in lay.all_regions())
            assert total < budget, name


class TestTrainingVsReference:
    def test_classification_stable_across_inputs(self):
        """The premise of profiling-based placement: object classes on the
        training input carry over to the reference input."""
        from repro.moca.framework import MocaFramework
        fw = MocaFramework()
        for app in ("mcf", "lbm"):
            train = fw.instrument(app, profile_app(app, "train", N))
            ref = fw.instrument(app, profile_app(app, "ref", N))
            same = sum(train.types[k] == ref.types.get(k)
                       for k in train.types)
            assert same >= len(train.types) - 1
