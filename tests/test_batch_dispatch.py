"""Tests for batched unit dispatch (``REPRO_BATCH_UNITS``).

The engine groups first-attempt sweep units into workload-major batches
per future.  These tests pin the contract: rows are byte-identical with
batching on or off, a failed unit inside a batch never takes its
siblings down, survivors checkpoint incrementally (mid-batch resume),
and the sizing heuristics respect their bounds.
"""

import json

import pytest

from repro.experiments import engine
from repro.experiments.resilience import (
    RetryPolicy,
    SweepFailure,
    chaos_probe,
    run_resilient,
)
from repro.sim.spec import RunSpec

# Two units per workload: batching is workload-major, so consecutive
# same-workload units are what actually groups into one future.
SPECS = [RunSpec(app, "Homogen-DDR3", "homogen", n)
         for app in ("mcf", "milc")
         for n in (1_000, 2_000)]

FAST = RetryPolicy(max_attempts=3, backoff_base=0.01, backoff_cap=0.05)


def _echo_runner(spec):
    chaos_probe()
    return spec.workload


@pytest.fixture(autouse=True)
def _isolated(monkeypatch):
    for var in ("REPRO_CHAOS_DIR", "REPRO_UNIT_TIMEOUT",
                "REPRO_MAX_ATTEMPTS", "REPRO_CACHE_DIR", "REPRO_WORKERS",
                "REPRO_OVERSUBSCRIBE", "REPRO_BATCH_UNITS",
                "REPRO_TELEMETRY"):
        monkeypatch.delenv(var, raising=False)
    engine.reset()
    yield
    engine.reset()


class TestBatchSizing:
    def test_serial_never_batches(self):
        assert engine._auto_batch_units(100, 1) == 1

    def test_small_sweeps_never_batch(self):
        assert engine._auto_batch_units(2, 2) == 1
        assert engine._auto_batch_units(4, 4) == 1

    def test_default_without_telemetry(self):
        assert engine._auto_batch_units(100, 2) == engine.DEFAULT_BATCH_UNITS

    def test_fair_share_clamp(self):
        # 5 units over 2 workers: ceil(5/2)=3 beats the default of 4.
        assert engine._auto_batch_units(5, 2) == 3

    def test_telemetry_drives_width(self):
        camp = engine.campaign_telemetry()
        camp.units = 10
        camp.wall_ns = int(1.0e9)  # 0.1 s/unit -> 20 wide, clamped to max
        assert engine._auto_batch_units(1000, 2) == engine.MAX_BATCH_UNITS
        camp.wall_ns = int(100.0e9)  # 10 s/unit -> no batching wins
        assert engine._auto_batch_units(1000, 2) == 1

    def test_env_literal_and_clamp(self, monkeypatch):
        monkeypatch.setenv(engine.ENV_BATCH, "3")
        assert engine.batch_units_for(100, 2) == 3
        monkeypatch.setenv(engine.ENV_BATCH, "999")
        assert engine.batch_units_for(100, 2) == engine.MAX_BATCH_UNITS

    def test_env_auto_forms(self, monkeypatch):
        for raw in ("", "0", "auto"):
            monkeypatch.setenv(engine.ENV_BATCH, raw)
            assert engine.batch_units_for(100, 2) == \
                engine.DEFAULT_BATCH_UNITS

    def test_env_malformed_falls_back(self, monkeypatch):
        monkeypatch.setenv(engine.ENV_BATCH, "frogs")
        assert engine.batch_units_for(100, 2) == engine.DEFAULT_BATCH_UNITS

    def test_configure_dispatch_roundtrip(self, monkeypatch):
        engine.configure_dispatch(2)
        assert engine.batch_units_for(100, 2) == 2
        engine.configure_dispatch(None)
        assert engine.batch_units_for(100, 2) == engine.DEFAULT_BATCH_UNITS


class TestBatchedRows:
    """Batching is a dispatch optimization — never a results change."""

    def test_batched_rows_byte_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_OVERSUBSCRIBE", "1")

        monkeypatch.setenv("REPRO_BATCH_UNITS", "1")
        plain = engine.execute(SPECS, phase="sweep.test")
        assert engine.dispatch_stats() is None  # nothing batched
        engine.reset()

        monkeypatch.setenv("REPRO_BATCH_UNITS", "2")
        batched = engine.execute(SPECS, phase="sweep.test")
        disp = engine.dispatch_stats()
        assert disp is not None and disp["batched_units"] == len(SPECS)
        assert disp["max_batch_units"] == 2

        for a, b in zip(plain, batched):
            da, db = a.to_dict(), b.to_dict()
            # meta carries provenance wall-clock timestamps, excluded
            # from result identity by design.
            da.pop("meta", None)
            db.pop("meta", None)
            assert json.dumps(da, sort_keys=True) == \
                json.dumps(db, sort_keys=True)

    def test_serial_path_ignores_batching(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_UNITS", "4")
        metrics = engine.execute(SPECS[:2], phase="sweep.test")
        assert all(m.exec_cycles > 0 for m in metrics)
        assert engine.dispatch_stats() is None

    def test_batch_size_lands_in_unit_telemetry(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_OVERSUBSCRIBE", "1")
        monkeypatch.setenv("REPRO_BATCH_UNITS", "2")
        engine.configure_telemetry(True)
        engine.execute(SPECS, phase="sweep.test")
        counters = engine.campaign_telemetry().counters
        assert counters.get("dispatch.batched_units", 0) == len(SPECS)


class TestBatchFaultIsolation:
    def test_failed_unit_spares_batch_siblings(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        (tmp_path / "error").write_text("1")
        report = run_resilient(SPECS, workers=2, policy=FAST,
                               runner=_echo_runner, batch_units=4)
        assert report.ok
        assert report.retries == 1  # only the chaos victim re-ran
        assert sorted(report.results) == sorted(s.workload for s in SPECS)

    def test_terminal_failure_in_batch_is_isolated(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        (tmp_path / "error").write_text("99")
        policy = RetryPolicy(max_attempts=2, backoff_base=0.01,
                             backoff_cap=0.05)
        report = run_resilient(SPECS, workers=2, policy=policy,
                               runner=_echo_runner, batch_units=4)
        assert not report.ok
        # Chaos keeps erroring, so every unit eventually fails — but each
        # is charged individually, with full attempt accounting.
        for failure in report.failures:
            assert failure.attempts == policy.max_attempts
        done = [r for r in report.results if r is not None]
        assert len(done) + len(report.failures) == len(SPECS)

    def test_worker_crash_charges_whole_batch(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        (tmp_path / "crash").write_text("1")
        report = run_resilient(SPECS, workers=2, policy=FAST,
                               runner=_echo_runner, batch_units=2)
        assert report.ok
        assert report.pool_breaks == 1
        assert sorted(report.results) == sorted(s.workload for s in SPECS)


class TestMidBatchResume:
    def test_survivors_checkpoint_and_resume(self, tmp_path, monkeypatch):
        """A campaign killed mid-batch re-simulates only the loser."""
        cache_dir = tmp_path / "cache"
        chaos = tmp_path / "chaos"
        chaos.mkdir()
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(chaos))
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_OVERSUBSCRIBE", "1")
        monkeypatch.setenv("REPRO_BATCH_UNITS", "2")
        (chaos / "error").write_text("1")
        engine.configure(cache_dir)
        engine.configure_resilience(RetryPolicy(
            max_attempts=1, backoff_base=0.01, backoff_cap=0.05))
        with pytest.raises(SweepFailure) as excinfo:
            engine.execute(SPECS, phase="sweep.test")
        assert len(excinfo.value.failures) == 1
        # Batch siblings landed in the cache despite the terminal loss.
        assert engine.cache_stats()["stores"] == len(SPECS) - 1

        engine.reset()
        engine.configure(cache_dir)
        engine.configure_resilience(FAST)
        metrics = engine.execute(SPECS, phase="sweep.test")
        assert all(m is not None and m.exec_cycles > 0 for m in metrics)
        stats = engine.cache_stats()
        assert stats["hits"] == len(SPECS) - 1  # only the loser re-ran
        assert stats["stores"] == 1
