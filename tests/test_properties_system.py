"""Property-based tests for system-level invariants: the interval core,
placement planning, and the memory system's conservation laws."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.core import CoreParams, InOrderWindowCore
from repro.cpu.hierarchy import KIND_LOAD, KIND_STORE, KIND_WRITEBACK, MissStream
from repro.memctrl.system import ChannelGroup, MemorySystem
from repro.memdev.presets import DDR3, LPDDR2, RLDRAM3
from repro.moca.allocation import MocaPolicy, plan_placement
from repro.trace.events import PAGE_BYTES
from repro.util.units import MIB
from repro.vm.allocator import OSPageAllocator
from repro.vm.heap import ObjectType
from repro.vm.pagetable import PageTable
from repro.vm.physmem import FramePool


# ---- strategies -------------------------------------------------------------------

record = st.tuples(
    st.integers(1, 60),                     # instruction gap
    st.integers(0, 4000),                   # line index
    st.sampled_from([KIND_LOAD, KIND_LOAD, KIND_STORE, KIND_WRITEBACK]),
    st.booleans(),                          # dep
)


def _make_stream(records) -> MissStream:
    gaps = [r[0] for r in records]
    inst = np.cumsum(np.asarray(gaps, dtype=np.int64))
    return MissStream(
        inst=inst,
        vline=np.asarray([r[1] * 64 for r in records], dtype=np.int64),
        obj_id=np.asarray([r[1] % 3 for r in records], dtype=np.int32),
        dep=np.asarray([r[3] for r in records], dtype=bool),
        kind=np.asarray([r[2] for r in records], dtype=np.int8),
        total_instructions=int(inst[-1]) + 50,
    )


def _memsys() -> MemorySystem:
    return MemorySystem({"main": ChannelGroup(DDR3, 2, 8 * MIB)})


class TestCoreInvariants:
    @given(st.lists(record, min_size=1, max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_conservation_and_attribution(self, records):
        """Counted records partition exactly; per-object attributions sum
        to the totals; execution covers all instructions."""
        s = _make_stream(records)
        groups = np.zeros(len(s), dtype=np.int32)
        gaddrs = s.vline % (8 * MIB)
        core = InOrderWindowCore(s, groups, gaddrs)
        r = core.run_to_completion(_memsys())
        assert r.n_demand + r.n_writebacks + r.n_prefetches == len(s)
        assert sum(r.load_misses_by_obj.values()) == r.n_load_misses
        assert sum(r.stall_by_obj.values()) == r.load_stall_cycles
        assert r.cycles >= s.total_instructions  # ipc=1 floor
        assert r.load_stall_cycles >= 0
        assert r.mem_access_cycles >= r.n_demand  # every request takes >=1

    @given(st.lists(record, min_size=1, max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_stall_bounded_by_latency_sum(self, records):
        """ROB-head stall can never exceed total demand latency."""
        s = _make_stream(records)
        groups = np.zeros(len(s), dtype=np.int32)
        gaddrs = s.vline % (8 * MIB)
        r = InOrderWindowCore(s, groups, gaddrs).run_to_completion(_memsys())
        assert r.load_stall_cycles <= r.mem_access_cycles

    @given(st.lists(record, min_size=2, max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_episode_stepping_monotone(self, records):
        """Episode completions never decrease the core clock."""
        s = _make_stream(records)
        groups = np.zeros(len(s), dtype=np.int32)
        gaddrs = s.vline % (8 * MIB)
        core = InOrderWindowCore(s, groups, gaddrs)
        memsys = _memsys()
        last = 0
        while not core.finished:
            cycle = core.run_episode(memsys)
            assert cycle >= last
            last = cycle

    @given(st.lists(record, min_size=1, max_size=60),
           st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_smaller_mshr_never_more_parallel(self, records, mshr):
        """Restricting MLP never merges episodes and never changes what
        was executed — only when.

        End-to-end cycle counts are deliberately NOT compared: they are
        not monotone in MSHR count.  Episode boundaries are anchored at
        the ROB head, so shrinking the MSHR can shift a later miss into
        a window where it overlaps, and a narrower core also puts fewer
        simultaneous requests into the shared FR-FCFS queues, both of
        which can make the narrow core finish a particular trace sooner.
        """
        s = _make_stream(records)
        groups = np.zeros(len(s), dtype=np.int32)
        gaddrs = s.vline % (8 * MIB)
        wide = InOrderWindowCore(
            s, groups, gaddrs, CoreParams(mshr=20)).run_to_completion(_memsys())
        narrow = InOrderWindowCore(
            s, groups, gaddrs, CoreParams(mshr=mshr)).run_to_completion(_memsys())
        # Structural monotonicity: a batch that fits in `mshr` demands
        # also fits in 20, so narrowing can only split episodes.
        assert narrow.n_episodes >= wide.n_episodes
        # Timing-independent conservation: the MSHR width changes the
        # schedule, never the set of records replayed.
        assert narrow.n_demand == wide.n_demand
        assert narrow.n_writebacks == wide.n_writebacks
        assert narrow.n_load_misses == wide.n_load_misses
        assert narrow.total_instructions == wide.total_instructions


class TestPlacementInvariants:
    pages = st.lists(st.integers(0, 5000), min_size=1, max_size=300)

    @given(pages)
    @settings(max_examples=40, deadline=None)
    def test_every_line_translated_in_capacity(self, lines):
        s = MissStream(
            inst=np.arange(1, len(lines) + 1, dtype=np.int64) * 10,
            vline=np.asarray(lines, dtype=np.int64) * 64,
            obj_id=np.asarray([l % 2 for l in lines], dtype=np.int32),
            dep=np.zeros(len(lines), dtype=bool),
            kind=np.zeros(len(lines), dtype=np.int8),
            total_instructions=len(lines) * 10 + 10,
        )
        caps = [4 * MIB, 16 * MIB, 64 * MIB]
        pools = {i: FramePool(c, i) for i, c in enumerate(caps)}
        alloc = OSPageAllocator(pools, {"lat": 0, "bw": 1, "pow": 2},
                                PageTable())
        policy = MocaPolicy([{0: ObjectType.LAT, 1: ObjectType.BW}])
        plan = plan_placement([s], policy, alloc)
        for g, a in zip(plan.groups[0].tolist(), plan.gaddrs[0].tolist()):
            assert 0 <= a < caps[g]

    @given(pages)
    @settings(max_examples=40, deadline=None)
    def test_frames_unique_per_group(self, lines):
        s = MissStream(
            inst=np.arange(1, len(lines) + 1, dtype=np.int64) * 10,
            vline=np.asarray(lines, dtype=np.int64) * 64,
            obj_id=np.zeros(len(lines), dtype=np.int32),
            dep=np.zeros(len(lines), dtype=bool),
            kind=np.zeros(len(lines), dtype=np.int8),
            total_instructions=len(lines) * 10 + 10,
        )
        pools = {0: FramePool(64 * MIB, 0)}
        alloc = OSPageAllocator(pools, {"main": 0}, PageTable())
        policy = MocaPolicy([{}])
        plan = plan_placement([s], policy, alloc)
        frames = {}
        for vline, g, a in zip(s.vline.tolist(), plan.groups[0].tolist(),
                               plan.gaddrs[0].tolist()):
            frame = a // PAGE_BYTES
            vpage = vline // PAGE_BYTES
            # Same vpage always hits the same frame; distinct vpages never
            # share a frame within a group.
            key = (g, frame)
            assert frames.setdefault(key, vpage) == vpage

    @given(pages)
    @settings(max_examples=30, deadline=None)
    def test_same_page_same_offset_preserved(self, lines):
        s = MissStream(
            inst=np.arange(1, len(lines) + 1, dtype=np.int64) * 10,
            vline=np.asarray(lines, dtype=np.int64) * 64,
            obj_id=np.zeros(len(lines), dtype=np.int32),
            dep=np.zeros(len(lines), dtype=bool),
            kind=np.zeros(len(lines), dtype=np.int8),
            total_instructions=len(lines) * 10 + 10,
        )
        pools = {0: FramePool(64 * MIB, 0)}
        alloc = OSPageAllocator(pools, {"main": 0}, PageTable())
        plan = plan_placement([s], MocaPolicy([{}]), alloc)
        offs_v = s.vline % PAGE_BYTES
        offs_p = plan.gaddrs[0] % PAGE_BYTES
        assert (offs_v == offs_p).all()


class TestMemorySystemInvariants:
    @given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 2000)),
                    min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_summary_counts_requests(self, reqs):
        from repro.memctrl.request import MemRequest
        memsys = MemorySystem({
            "lat": ChannelGroup(RLDRAM3, 1, 4 * MIB),
            "bw": ChannelGroup(DDR3, 2, 8 * MIB),
            "pow": ChannelGroup(LPDDR2, 1, 8 * MIB),
        })
        batch = [MemRequest(group=g, gaddr=line * 64, issue_cycle=i)
                 for i, (g, line) in enumerate(reqs)]
        memsys.service_batch(batch)
        summary = memsys.summary(10_000_000)
        assert summary.n_requests == len(reqs)
        assert all(r.done_cycle > r.issue_cycle for r in batch)
        assert summary.power_w > 0
