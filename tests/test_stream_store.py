"""Tests for the persistent miss-stream store and its engine wiring."""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cpu.hierarchy import CacheHierarchy
from repro.experiments import engine
from repro.sim import stream_store
from repro.trace.builder import ObjectBehavior, TraceBuilder
from repro.util.rng import stream
from repro.util.units import KIB, MIB


@pytest.fixture(autouse=True)
def _clean_wiring(monkeypatch):
    """Isolate every test from ambient store configuration."""
    monkeypatch.delenv(stream_store.ENV_DIR, raising=False)
    monkeypatch.delenv(stream_store.ENV_REFRESH, raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    stream_store.reset()
    yield
    stream_store.reset()
    engine.reset()


def _filtered():
    b = [ObjectBehavior("o", 2 * MIB, 1.0, pattern="rand", gap_mean=5,
                        write_frac=0.4, site=1)]
    trace = TraceBuilder(b).build(6000, stream("tests", "stream_store"))
    return CacheHierarchy().filter_trace(trace)


def _assert_equal_result(a, b):
    s1, c1 = a
    s2, c2 = b
    for name in ("inst", "vline", "obj_id", "dep", "kind"):
        x, y = getattr(s1, name), getattr(s2, name)
        assert x.dtype == y.dtype and np.array_equal(x, y), name
    assert s1.total_instructions == s2.total_instructions
    assert c1 == c2
    assert list(c1.per_object) == list(c2.per_object)


class TestStoreRoundTrip:
    def test_put_get(self, tmp_path):
        store = stream_store.StreamStore(tmp_path)
        key = stream_store.filter_key("mcf", "ref", 6000)
        result = _filtered()
        assert store.get(key) is None          # cold
        store.put(key, *result)
        got = store.get(key)
        assert got is not None
        _assert_equal_result(got, result)
        assert store.stats.to_dict() == {
            "hits": 1, "misses": 1, "stores": 1, "corrupt": 0,
            "hit_ratio": 0.5}
        assert len(store) == 1

    def test_key_distinguishes_geometry_and_length(self):
        base = stream_store.filter_key("mcf", "ref", 6000)
        assert (stream_store.key_digest(base)
                != stream_store.key_digest(
                    stream_store.filter_key("mcf", "ref", 6001)))
        small = stream_store.filter_key(
            "mcf", "ref", 6000, hierarchy=CacheHierarchy(l1_size=32 * KIB))
        assert (stream_store.key_digest(base)
                != stream_store.key_digest(small))
        assert (stream_store.key_digest(base)
                == stream_store.key_digest(
                    stream_store.filter_key("mcf", "ref", 6000)))

    def test_refresh_bypasses_reads_but_still_writes(self, tmp_path):
        key = stream_store.filter_key("mcf", "ref", 6000)
        result = _filtered()
        stream_store.StreamStore(tmp_path).put(key, *result)
        store = stream_store.StreamStore(tmp_path, refresh=True)
        assert store.get(key) is None
        store.put(key, *result)
        assert store.stats.stores == 1
        assert stream_store.StreamStore(tmp_path).get(key) is not None

    def test_corrupt_entry_recovered(self, tmp_path):
        store = stream_store.StreamStore(tmp_path)
        key = stream_store.filter_key("mcf", "ref", 6000)
        store.put(key, *_filtered())
        store.path_for(key).write_bytes(b"not an npz")
        assert store.get(key) is None          # warns, deletes, misses
        assert store.stats.corrupt == 1
        assert not store.path_for(key).exists()

    def test_stale_version_dropped_silently(self, tmp_path):
        store = stream_store.StreamStore(tmp_path)
        key = stream_store.filter_key("mcf", "ref", 6000)
        path = store.put(key, *_filtered())
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        doc = json.loads(bytes(arrays["meta"]).decode())
        doc["version"] = stream_store.STREAM_STORE_VERSION + 1
        arrays["meta"] = np.frombuffer(json.dumps(doc).encode(),
                                       dtype=np.uint8)
        np.savez_compressed(path, **arrays)
        assert store.get(key) is None
        assert store.stats.corrupt == 0        # stale != corrupt
        assert not path.exists()

    def test_truncated_array_is_corrupt(self, tmp_path):
        store = stream_store.StreamStore(tmp_path)
        key = stream_store.filter_key("mcf", "ref", 6000)
        path = store.put(key, *_filtered())
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["vline"] = arrays["vline"][:-1]
        np.savez_compressed(path, **arrays)
        assert store.get(key) is None
        assert store.stats.corrupt == 1


class TestModuleWiring:
    def test_disabled_by_default(self):
        assert stream_store.active() is None
        assert stream_store.stats_dict() is None

    def test_env_dir_selects_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv(stream_store.ENV_DIR, str(tmp_path))
        store = stream_store.active()
        assert store is not None and store.directory == tmp_path
        assert store is stream_store.active()  # cached instance

    def test_empty_env_means_explicitly_disabled(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert stream_store.active() is not None
        monkeypatch.setenv(stream_store.ENV_DIR, "")
        assert stream_store.active() is None

    def test_cache_dir_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store = stream_store.active()
        assert store.directory == tmp_path / "streams"

    def test_configure_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(stream_store.ENV_DIR, str(tmp_path / "env"))
        stream_store.configure(tmp_path / "explicit")
        assert stream_store.active().directory == tmp_path / "explicit"
        stream_store.configure(None)
        assert stream_store.active() is None
        stream_store.reset()
        assert stream_store.active().directory == tmp_path / "env"

    def test_env_refresh_flag(self, tmp_path, monkeypatch):
        monkeypatch.setenv(stream_store.ENV_DIR, str(tmp_path))
        monkeypatch.setenv(stream_store.ENV_REFRESH, "1")
        assert stream_store.active().refresh


class TestEngineWiring:
    def test_configure_roots_streams_under_cache_dir(self, tmp_path):
        engine.configure(tmp_path)
        store = stream_store.active()
        assert store is not None
        assert store.directory == tmp_path / "streams"
        # Exported for worker processes.
        assert os.environ[stream_store.ENV_DIR] == str(tmp_path / "streams")

    def test_no_cache_disables_streams_everywhere(self, tmp_path):
        engine.configure(None)
        assert stream_store.active() is None
        # Workers must inherit the disable, not fall back to env dirs.
        assert os.environ[stream_store.ENV_DIR] == ""

    def test_refresh_carries_over(self, tmp_path):
        engine.configure(tmp_path, refresh=True)
        assert stream_store.active().refresh
        assert os.environ[stream_store.ENV_REFRESH] == "1"

    def test_env_stream_dir_overrides_cache_dir(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv(stream_store.ENV_DIR, str(tmp_path / "s"))
        engine.configure(tmp_path / "cache")
        assert stream_store.active().directory == tmp_path / "s"

    def test_reset_restores_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(stream_store.ENV_DIR, str(tmp_path / "orig"))
        engine.configure(tmp_path / "cache")
        engine.reset()
        assert os.environ[stream_store.ENV_DIR] == str(tmp_path / "orig")

    def test_cache_stats_reports_streams_block(self, tmp_path):
        engine.configure(tmp_path)
        store = stream_store.active()
        store.put(stream_store.filter_key("mcf", "ref", 6000), *_filtered())
        stats = engine.cache_stats()
        assert stats is not None
        assert stats["streams"]["stores"] == 1
        assert "hit_ratio" in stats["streams"]
        engine.configure(None)
        assert engine.cache_stats() is None


_CHILD = """\
import sys
from repro.sim.single import filter_provenance, filtered_stream
s, c = filtered_stream("disparity", "ref", 3000)
prov = filter_provenance("disparity", "ref", 3000)
print(prov["engine"], prov["from_store"], len(s), c.l2_misses)
"""


class TestCrossProcess:
    def test_second_process_hits_the_store(self, tmp_path):
        env = {**os.environ, "PYTHONPATH": "src",
               stream_store.ENV_DIR: str(tmp_path)}
        outs = []
        for _ in range(2):
            proc = subprocess.run([sys.executable, "-c", _CHILD],
                                  capture_output=True, text=True, env=env,
                                  cwd=Path(__file__).resolve().parent.parent)
            assert proc.returncode == 0, proc.stderr
            outs.append(proc.stdout.split())
        engine1, from1, n1, m1 = outs[0]
        engine2, from2, n2, m2 = outs[1]
        assert engine1 == "kernel" and from1 == "False"
        assert engine2 == "store" and from2 == "True"
        assert (n1, m1) == (n2, m2)            # identical stream content
