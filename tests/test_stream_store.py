"""Tests for the persistent miss-stream store and its engine wiring.

Store format v2 (mmap-native `.npy` columns + `.json` meta) is covered
here: round-trips, corrupt/stale handling, legacy-npz read-through
migration, pair-aware eviction, the writer/mmap-reader race, and
cross-process sharing.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cpu.hierarchy import CacheHierarchy
from repro.experiments import engine
from repro.sim import stream_store
from repro.trace.builder import ObjectBehavior, TraceBuilder
from repro.util.rng import stream
from repro.util.units import KIB, MIB


@pytest.fixture(autouse=True)
def _clean_wiring(monkeypatch):
    """Isolate every test from ambient store configuration."""
    monkeypatch.delenv(stream_store.ENV_DIR, raising=False)
    monkeypatch.delenv(stream_store.ENV_REFRESH, raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    stream_store.reset()
    yield
    stream_store.reset()
    engine.reset()


def _filtered():
    b = [ObjectBehavior("o", 2 * MIB, 1.0, pattern="rand", gap_mean=5,
                        write_frac=0.4, site=1)]
    trace = TraceBuilder(b).build(6000, stream("tests", "stream_store"))
    return CacheHierarchy().filter_trace(trace)


def _assert_equal_result(a, b):
    s1, c1 = a
    s2, c2 = b
    for name in ("inst", "vline", "obj_id", "dep", "kind"):
        x, y = getattr(s1, name), getattr(s2, name)
        assert x.dtype == y.dtype and np.array_equal(x, y), name
    assert s1.total_instructions == s2.total_instructions
    assert c1 == c2
    assert list(c1.per_object) == list(c2.per_object)


def _write_legacy_npz(store, key, result):
    """Replicate the v1 single-npz writer for migration tests."""
    miss, stats = result
    doc = {
        "version": 1,
        "repro_version": "legacy",
        "key": key,
        "total_instructions": miss.total_instructions,
        "stats": {
            "total_instructions": stats.total_instructions,
            "l1_hits": stats.l1_hits,
            "l1_misses": stats.l1_misses,
            "l2_hits": stats.l2_hits,
            "l2_misses": stats.l2_misses,
            "n_writebacks": stats.n_writebacks,
            "per_object": [[obj, acc, m] for obj, (acc, m)
                           in stats.per_object.items()],
        },
    }
    store.directory.mkdir(parents=True, exist_ok=True)
    path = store.legacy_path_for(key)
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(doc).encode(), dtype=np.uint8),
        inst=miss.inst, vline=miss.vline, obj_id=miss.obj_id,
        dep=miss.dep, kind=miss.kind)
    return path


class TestStoreRoundTrip:
    def test_put_get(self, tmp_path):
        store = stream_store.StreamStore(tmp_path)
        key = stream_store.filter_key("mcf", "ref", 6000)
        result = _filtered()
        assert store.get(key) is None          # cold
        store.put(key, *result)
        got = store.get(key)
        assert got is not None
        _assert_equal_result(got, result)
        assert store.stats.to_dict() == {
            "hits": 1, "misses": 1, "stores": 1, "corrupt": 0,
            "evicted": 0, "hit_ratio": 0.5}
        assert len(store) == 1

    def test_hit_returns_mmap_views(self, tmp_path):
        store = stream_store.StreamStore(tmp_path)
        key = stream_store.filter_key("mcf", "ref", 6000)
        store.put(key, *_filtered())
        got, _ = store.get(key)
        assert isinstance(got.inst, np.memmap)
        assert not got.inst.flags.writeable

    def test_repeat_get_serves_resident_entry(self, tmp_path):
        store = stream_store.StreamStore(tmp_path)
        key = stream_store.filter_key("mcf", "ref", 6000)
        store.put(key, *_filtered())
        first = store.get(key)
        second = store.get(key)
        # Identity, not just equality: the resident LRU returns the
        # exact decoded object while the entry file is unchanged.
        assert second[0] is first[0]
        assert store.stats.hits == 2
        # Rewriting the entry (new mtime) invalidates residency.
        store.put(key, *first)
        third = store.get(key)
        assert third[0] is not first[0]
        _assert_equal_result(third, first)

    def test_key_distinguishes_geometry_and_length(self):
        base = stream_store.filter_key("mcf", "ref", 6000)
        assert (stream_store.key_digest(base)
                != stream_store.key_digest(
                    stream_store.filter_key("mcf", "ref", 6001)))
        small = stream_store.filter_key(
            "mcf", "ref", 6000, hierarchy=CacheHierarchy(l1_size=32 * KIB))
        assert (stream_store.key_digest(base)
                != stream_store.key_digest(small))
        assert (stream_store.key_digest(base)
                == stream_store.key_digest(
                    stream_store.filter_key("mcf", "ref", 6000)))

    def test_refresh_bypasses_reads_but_still_writes(self, tmp_path):
        key = stream_store.filter_key("mcf", "ref", 6000)
        result = _filtered()
        stream_store.StreamStore(tmp_path).put(key, *result)
        store = stream_store.StreamStore(tmp_path, refresh=True)
        assert store.get(key) is None
        store.put(key, *result)
        assert store.stats.stores == 1
        assert stream_store.StreamStore(tmp_path).get(key) is not None

    def test_corrupt_meta_recovered(self, tmp_path):
        store = stream_store.StreamStore(tmp_path)
        key = stream_store.filter_key("mcf", "ref", 6000)
        store.put(key, *_filtered())
        store.path_for(key).write_text("{not json")
        assert store.get(key) is None          # warns, deletes, misses
        assert store.stats.corrupt == 1
        assert not store.path_for(key).exists()
        assert len(store) == 0                 # columns removed too

    def test_corrupt_column_recovered(self, tmp_path):
        store = stream_store.StreamStore(tmp_path)
        key = stream_store.filter_key("mcf", "ref", 6000)
        store.put(key, *_filtered())
        digest = stream_store.key_digest(key)
        store.column_path(digest, "vline").write_bytes(b"not an npy")
        assert store.get(key) is None
        assert store.stats.corrupt == 1
        assert len(store) == 0

    def test_missing_column_is_corrupt(self, tmp_path):
        store = stream_store.StreamStore(tmp_path)
        key = stream_store.filter_key("mcf", "ref", 6000)
        store.put(key, *_filtered())
        digest = stream_store.key_digest(key)
        store.column_path(digest, "kind").unlink()
        assert store.get(key) is None
        assert store.stats.corrupt == 1
        assert len(store) == 0

    def test_stale_version_dropped_silently(self, tmp_path):
        store = stream_store.StreamStore(tmp_path)
        key = stream_store.filter_key("mcf", "ref", 6000)
        path = store.put(key, *_filtered())
        doc = json.loads(path.read_text())
        doc["version"] = stream_store.STREAM_STORE_VERSION + 1
        path.write_text(json.dumps(doc))
        assert store.get(key) is None
        assert store.stats.corrupt == 0        # stale != corrupt
        assert not path.exists()
        assert len(store) == 0

    def test_truncated_array_is_corrupt(self, tmp_path):
        store = stream_store.StreamStore(tmp_path)
        key = stream_store.filter_key("mcf", "ref", 6000)
        store.put(key, *_filtered())
        digest = stream_store.key_digest(key)
        cpath = store.column_path(digest, "vline")
        arr = np.load(cpath)
        np.save(cpath.with_suffix(""), arr[:-1])  # np.save re-adds .npy
        assert store.get(key) is None
        assert store.stats.corrupt == 1


class TestLegacyMigration:
    def test_npz_entry_read_through_and_migrated(self, tmp_path):
        store = stream_store.StreamStore(tmp_path)
        key = stream_store.filter_key("mcf", "ref", 6000)
        result = _filtered()
        npz = _write_legacy_npz(store, key, result)
        got = store.get(key)
        assert got is not None
        _assert_equal_result(got, result)
        assert store.stats.hits == 1
        # Migration: rewritten as a v2 entry, npz gone.
        assert not npz.exists()
        assert store.path_for(key).exists()
        doc = json.loads(store.path_for(key).read_text())
        assert doc["version"] == stream_store.STREAM_STORE_VERSION
        # And the migrated entry serves v2 (mmap) hits.
        again, _ = stream_store.StreamStore(tmp_path).get(key)
        assert isinstance(again.inst, np.memmap)

    def test_stale_npz_version_dropped(self, tmp_path):
        store = stream_store.StreamStore(tmp_path)
        key = stream_store.filter_key("mcf", "ref", 6000)
        npz = _write_legacy_npz(store, key, _filtered())
        with np.load(npz) as data:
            arrays = {k: data[k] for k in data.files}
        doc = json.loads(bytes(arrays["meta"]).decode())
        doc["version"] = 0
        arrays["meta"] = np.frombuffer(json.dumps(doc).encode(),
                                       dtype=np.uint8)
        np.savez_compressed(npz, **arrays)
        assert store.get(key) is None
        assert store.stats.corrupt == 0
        assert not npz.exists()

    def test_corrupt_npz_recovered(self, tmp_path):
        store = stream_store.StreamStore(tmp_path)
        key = stream_store.filter_key("mcf", "ref", 6000)
        npz = _write_legacy_npz(store, key, _filtered())
        npz.write_bytes(b"not an npz")
        assert store.get(key) is None
        assert store.stats.corrupt == 1
        assert not npz.exists()


class TestEviction:
    def _put_aged(self, store, n):
        keys = []
        for i in range(n):
            key = stream_store.filter_key("mcf", "ref", 6000 + i)
            store.put(key, *_filtered())
            # Deterministic ages regardless of filesystem timestamp
            # granularity: entry i is i seconds old.
            for p in store.directory.glob(
                    f"{stream_store.key_digest(key)}*"):
                os.utime(p, (1000.0 + i, 1000.0 + i))
            keys.append(key)
        return keys

    def test_oldest_entries_evicted_as_groups(self, tmp_path):
        store = stream_store.StreamStore(tmp_path, max_entries=2)
        keys = self._put_aged(store, 2)
        # Third put (newest mtime, no utime rewind) evicts entry 0.
        extra = stream_store.filter_key("mcf", "ref", 9000)
        store.put(extra, *_filtered())
        assert len(store) == 2
        assert store.stats.evicted == 1
        gone = stream_store.key_digest(keys[0])
        assert not list(store.directory.glob(f"{gone}*"))  # no orphans
        assert stream_store.StreamStore(tmp_path).get(keys[1]) is not None

    def test_eviction_counts_legacy_npz_entries(self, tmp_path):
        store = stream_store.StreamStore(tmp_path, max_entries=1)
        old_key = stream_store.filter_key("mcf", "ref", 5000)
        npz = _write_legacy_npz(store, old_key, _filtered())
        os.utime(npz, (1000.0, 1000.0))
        store.put(stream_store.filter_key("mcf", "ref", 6000), *_filtered())
        assert not npz.exists()
        assert store.stats.evicted == 1
        assert len(store) == 1

    def test_tolerates_vanishing_halves(self, tmp_path):
        store = stream_store.StreamStore(tmp_path)
        key = stream_store.filter_key("mcf", "ref", 6000)
        store.put(key, *_filtered())
        # A concurrent evictor already took the meta; ours must not
        # trip over the remains.
        store.path_for(key).unlink()
        store._evict_over(0)
        assert not list(store.directory.glob("*.npy"))


class TestWriterReaderRace:
    def test_reader_keeps_view_after_eviction(self, tmp_path):
        """POSIX keeps an unlinked mapping valid: a reader's arrays
        survive concurrent eviction and overwrite of their entry."""
        store = stream_store.StreamStore(tmp_path)
        key = stream_store.filter_key("mcf", "ref", 6000)
        result = _filtered()
        store.put(key, *result)
        miss, stats = stream_store.StreamStore(tmp_path).get(key)
        snapshot = miss.inst[:10].copy()
        # Evict the entry out from under the live mapping...
        store._evict_over(0)
        assert len(store) == 0
        assert np.array_equal(miss.inst[:10], snapshot)
        _assert_equal_result((miss, stats), result)
        # ...and overwrite it; the old view still reads old content.
        store.put(key, *result)
        assert np.array_equal(miss.inst, result[0].inst)


class TestModuleWiring:
    def test_disabled_by_default(self):
        assert stream_store.active() is None
        assert stream_store.stats_dict() is None

    def test_env_dir_selects_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv(stream_store.ENV_DIR, str(tmp_path))
        store = stream_store.active()
        assert store is not None and store.directory == tmp_path
        assert store is stream_store.active()  # cached instance

    def test_empty_env_means_explicitly_disabled(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert stream_store.active() is not None
        monkeypatch.setenv(stream_store.ENV_DIR, "")
        assert stream_store.active() is None

    def test_cache_dir_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store = stream_store.active()
        assert store.directory == tmp_path / "streams"

    def test_configure_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(stream_store.ENV_DIR, str(tmp_path / "env"))
        stream_store.configure(tmp_path / "explicit")
        assert stream_store.active().directory == tmp_path / "explicit"
        stream_store.configure(None)
        assert stream_store.active() is None
        stream_store.reset()
        assert stream_store.active().directory == tmp_path / "env"

    def test_env_refresh_flag(self, tmp_path, monkeypatch):
        monkeypatch.setenv(stream_store.ENV_DIR, str(tmp_path))
        monkeypatch.setenv(stream_store.ENV_REFRESH, "1")
        assert stream_store.active().refresh


class TestEngineWiring:
    def test_configure_roots_streams_under_cache_dir(self, tmp_path):
        engine.configure(tmp_path)
        store = stream_store.active()
        assert store is not None
        assert store.directory == tmp_path / "streams"
        # Exported for worker processes.
        assert os.environ[stream_store.ENV_DIR] == str(tmp_path / "streams")

    def test_no_cache_disables_streams_everywhere(self, tmp_path):
        engine.configure(None)
        assert stream_store.active() is None
        # Workers must inherit the disable, not fall back to env dirs.
        assert os.environ[stream_store.ENV_DIR] == ""

    def test_refresh_carries_over(self, tmp_path):
        engine.configure(tmp_path, refresh=True)
        assert stream_store.active().refresh
        assert os.environ[stream_store.ENV_REFRESH] == "1"

    def test_env_stream_dir_overrides_cache_dir(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv(stream_store.ENV_DIR, str(tmp_path / "s"))
        engine.configure(tmp_path / "cache")
        assert stream_store.active().directory == tmp_path / "s"

    def test_reset_restores_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(stream_store.ENV_DIR, str(tmp_path / "orig"))
        engine.configure(tmp_path / "cache")
        engine.reset()
        assert os.environ[stream_store.ENV_DIR] == str(tmp_path / "orig")

    def test_cache_stats_reports_streams_block(self, tmp_path):
        engine.configure(tmp_path)
        store = stream_store.active()
        store.put(stream_store.filter_key("mcf", "ref", 6000), *_filtered())
        stats = engine.cache_stats()
        assert stats is not None
        assert stats["streams"]["stores"] == 1
        assert "hit_ratio" in stats["streams"]
        engine.configure(None)
        assert engine.cache_stats() is None


_CHILD = """\
import sys
import numpy as np
from repro.sim.single import filter_provenance, filtered_stream
s, c = filtered_stream("disparity", "ref", 3000)
prov = filter_provenance("disparity", "ref", 3000)
print(prov["engine"], prov["from_store"], len(s), c.l2_misses,
      isinstance(s.inst, np.memmap))
"""


class TestCrossProcess:
    def test_second_process_hits_the_store(self, tmp_path):
        env = {**os.environ, "PYTHONPATH": "src",
               stream_store.ENV_DIR: str(tmp_path)}
        outs = []
        for _ in range(2):
            proc = subprocess.run([sys.executable, "-c", _CHILD],
                                  capture_output=True, text=True, env=env,
                                  cwd=Path(__file__).resolve().parent.parent)
            assert proc.returncode == 0, proc.stderr
            outs.append(proc.stdout.split())
        engine1, from1, n1, m1, mmap1 = outs[0]
        engine2, from2, n2, m2, mmap2 = outs[1]
        assert engine1 == "kernel" and from1 == "False"
        assert engine2 == "store" and from2 == "True"
        assert (n1, m1) == (n2, m2)            # identical stream content
        # The store hit is a shared mapping, not a private copy: both
        # processes read the same physical pages off the page cache.
        assert mmap1 == "False" and mmap2 == "True"
