"""Campaign-level chaos tests: crash, kill, resume, keep-going.

Everything here drives the real CLI (``python -m repro.experiments``) in
subprocesses, the way a user would, and checks the two promises of the
resilience layer: the campaign *completes* despite injected faults, and
a resumed/faulted campaign produces figure rows identical to an
undisturbed run.

The figure of choice is ``smoke`` — six independent sweep units, cheap
enough to run cold in a subprocess, parallel enough to exercise the
worker pool.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent


def campaign_cmd(save: Path, cache: Path, *extra: str) -> list[str]:
    return [sys.executable, "-m", "repro.experiments", "smoke",
            "--fidelity", "tiny", "--save", str(save),
            "--cache-dir", str(cache), *extra]


def campaign_env(**overrides: str) -> dict:
    env = {**os.environ, "PYTHONPATH": "src"}
    for var in ("REPRO_CHAOS_DIR", "REPRO_WORKERS", "REPRO_OVERSUBSCRIBE",
                "REPRO_UNIT_TIMEOUT", "REPRO_MAX_ATTEMPTS",
                "REPRO_CACHE_DIR"):
        env.pop(var, None)
    env.update(overrides)
    return env


@pytest.fixture(scope="module")
def reference_rows(tmp_path_factory) -> list:
    """Figure rows from one undisturbed campaign — the ground truth."""
    base = tmp_path_factory.mktemp("reference")
    proc = subprocess.run(
        campaign_cmd(base / "save", base / "cache"),
        capture_output=True, text=True, env=campaign_env(), cwd=REPO,
        timeout=300)
    assert proc.returncode == 0, proc.stderr
    return json.loads((base / "save" / "smoke.json").read_text())["rows"]


class TestWorkerCrash:
    def test_crashed_worker_campaign_completes_identically(
            self, tmp_path, reference_rows):
        """SIGKILL-equivalent worker death (``os._exit`` mid-unit): the
        pool is rebuilt, the unit retried, and the figure's rows match
        the undisturbed run bit for bit."""
        chaos = tmp_path / "chaos"
        chaos.mkdir()
        (chaos / "crash").write_text("1")
        proc = subprocess.run(
            campaign_cmd(tmp_path / "save", tmp_path / "cache"),
            capture_output=True, text=True, cwd=REPO, timeout=300,
            env=campaign_env(REPRO_CHAOS_DIR=str(chaos),
                             REPRO_WORKERS="2", REPRO_OVERSUBSCRIBE="1"))
        assert proc.returncode == 0, proc.stderr

        manifest = json.loads(
            (tmp_path / "save" / "manifest.json").read_text())
        assert manifest["resilience"]["pool_breaks"] >= 1
        assert manifest["resilience"]["retries"] >= 1
        assert manifest["resilience"]["failed_units"] == []
        assert manifest["figure_status"]["smoke"]["status"] == "ok"

        rows = json.loads(
            (tmp_path / "save" / "smoke.json").read_text())["rows"]
        assert rows == reference_rows

    def test_hung_unit_campaign_completes_identically(
            self, tmp_path, reference_rows):
        """One unit sleeps far past the unit timeout; the harness kills
        the pool, charges the hang, and still delivers correct rows."""
        chaos = tmp_path / "chaos"
        chaos.mkdir()
        (chaos / "hang").write_text("1 120")
        proc = subprocess.run(
            campaign_cmd(tmp_path / "save", tmp_path / "cache",
                         "--unit-timeout", "3"),
            capture_output=True, text=True, cwd=REPO, timeout=300,
            env=campaign_env(REPRO_CHAOS_DIR=str(chaos),
                             REPRO_WORKERS="2", REPRO_OVERSUBSCRIBE="1"))
        assert proc.returncode == 0, proc.stderr
        manifest = json.loads(
            (tmp_path / "save" / "manifest.json").read_text())
        assert manifest["resilience"]["timeouts"] >= 1
        rows = json.loads(
            (tmp_path / "save" / "smoke.json").read_text())["rows"]
        assert rows == reference_rows


class TestKilledCampaign:
    def test_sigkilled_campaign_resumes_identically(
            self, tmp_path, reference_rows):
        """SIGKILL the whole campaign mid-sweep; re-running the same
        command finishes from the result cache + checkpoint journal and
        produces the same figure rows as a never-interrupted run."""
        save, cache = tmp_path / "save", tmp_path / "cache"
        cmd = campaign_cmd(save, cache)
        env = campaign_env()
        proc = subprocess.Popen(cmd, cwd=REPO, env=env,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        try:
            # Wait for evidence of progress (first cached result), then
            # kill without warning.  If the campaign happens to win the
            # race and finish, the rerun is a pure-resume check instead —
            # still a valid outcome, just a less interesting one.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if cache.exists() and any(cache.glob("*.json")):
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.005)
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=60)

        rerun = subprocess.run(cmd, capture_output=True, text=True,
                               cwd=REPO, env=env, timeout=300)
        assert rerun.returncode == 0, rerun.stderr
        rows = json.loads((save / "smoke.json").read_text())["rows"]
        assert rows == reference_rows
        manifest = json.loads((save / "manifest.json").read_text())
        assert manifest["figure_status"]["smoke"]["status"] in ("ok",
                                                               "resumed")

    def test_completed_figure_resumes_from_journal(self, tmp_path):
        save, cache = tmp_path / "save", tmp_path / "cache"
        env = campaign_env()
        first = subprocess.run(campaign_cmd(save, cache),
                               capture_output=True, text=True, cwd=REPO,
                               env=env, timeout=300)
        assert first.returncode == 0, first.stderr
        assert (save / ".campaign.json").exists()
        second = subprocess.run(campaign_cmd(save, cache),
                                capture_output=True, text=True, cwd=REPO,
                                env=env, timeout=300)
        assert second.returncode == 0, second.stderr
        assert "resumed from checkpoint" in second.stdout
        manifest = json.loads((save / "manifest.json").read_text())
        assert manifest["figure_status"]["smoke"]["status"] == "resumed"

    def test_no_resume_recomputes(self, tmp_path):
        save, cache = tmp_path / "save", tmp_path / "cache"
        env = campaign_env()
        subprocess.run(campaign_cmd(save, cache), capture_output=True,
                       cwd=REPO, env=env, timeout=300, check=True)
        again = subprocess.run(
            campaign_cmd(save, cache, "--no-resume"),
            capture_output=True, text=True, cwd=REPO, env=env,
            timeout=300)
        assert again.returncode == 0, again.stderr
        assert "resumed from checkpoint" not in again.stdout


class TestKeepGoing:
    def test_failed_figure_does_not_kill_siblings(self, tmp_path):
        """A figure whose sweep fails terminally is recorded as failed;
        the next figure still runs (default --keep-going), and the exit
        code says the campaign was not clean."""
        chaos = tmp_path / "chaos"
        chaos.mkdir()
        (chaos / "error").write_text("99")
        save = tmp_path / "save"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "smoke", "table2",
             "--fidelity", "tiny", "--save", str(save),
             "--cache-dir", str(tmp_path / "cache")],
            capture_output=True, text=True, cwd=REPO, timeout=300,
            env=campaign_env(REPRO_CHAOS_DIR=str(chaos),
                             REPRO_MAX_ATTEMPTS="1"))
        assert proc.returncode == 1
        manifest = json.loads((save / "manifest.json").read_text())
        assert manifest["figure_status"]["smoke"]["status"] == "failed"
        assert "SweepFailure" in manifest["figure_status"]["smoke"]["error"]
        assert manifest["figure_status"]["table2"]["status"] == "ok"
        assert (save / "table2.json").exists()
        assert not (save / "smoke.json").exists()
        assert len(manifest["resilience"]["failed_units"]) == 6

    def test_fail_fast_aborts_campaign(self, tmp_path):
        chaos = tmp_path / "chaos"
        chaos.mkdir()
        (chaos / "error").write_text("99")
        save = tmp_path / "save"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "smoke", "table2",
             "--fidelity", "tiny", "--save", str(save), "--fail-fast",
             "--cache-dir", str(tmp_path / "cache")],
            capture_output=True, text=True, cwd=REPO, timeout=300,
            env=campaign_env(REPRO_CHAOS_DIR=str(chaos),
                             REPRO_MAX_ATTEMPTS="1"))
        assert proc.returncode == 1
        manifest = json.loads((save / "manifest.json").read_text())
        assert manifest["figure_status"]["smoke"]["status"] == "failed"
        assert "table2" not in manifest["figure_status"]
        assert not (save / "table2.json").exists()
