"""Property-based tests (hypothesis) for core data structures/invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.cache import SetAssocCache
from repro.memctrl.addrmap import GroupAddressMap
from repro.memdev.bank import BankState
from repro.memdev.presets import DDR3, HBM, LPDDR2, RLDRAM3
from repro.moca.classify import Thresholds, classify_metrics
from repro.moca.naming import name_from_site
from repro.trace import patterns
from repro.trace.events import PAGE_BYTES, VirtualLayout
from repro.util.rng import derive_seed, stream
from repro.vm.heap import ObjectType
from repro.vm.pagetable import PageTable
from repro.vm.physmem import FramePool

DEVICES = (DDR3, HBM, RLDRAM3, LPDDR2)

addresses = st.integers(min_value=0, max_value=(1 << 34) - 1)
rows = st.integers(min_value=0, max_value=8191)


class TestBankProperties:
    @given(st.lists(st.tuples(rows, st.integers(0, 10_000)),
                    min_size=1, max_size=50),
           st.sampled_from(DEVICES))
    @settings(max_examples=60)
    def test_completions_monotone_nondecreasing(self, ops, dev):
        """Whatever the access pattern, bank time never flows backwards."""
        b = BankState()
        last = -1
        t = 0
        for row, gap in ops:
            t += gap
            done = b.service(dev, row, t)
            assert done >= last
            assert done >= t
            last = done

    @given(rows, st.sampled_from(DEVICES))
    @settings(max_examples=40)
    def test_hit_never_slower_than_miss(self, row, dev):
        hit_bank = BankState(open_row=row)
        miss_bank = BankState()
        assert (hit_bank.access_latency(dev, row)
                <= miss_bank.access_latency(dev, row))


class TestAddrMapProperties:
    @given(addresses, st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=200)
    def test_route_inverse_roundtrip(self, gaddr, n):
        amap = GroupAddressMap(n)
        ch, local = amap.route(gaddr)
        assert 0 <= ch < n
        assert amap.inverse(ch, local) == gaddr

    @given(st.integers(0, 1 << 20), st.sampled_from([2, 4]))
    @settings(max_examples=100)
    def test_distinct_lines_distinct_routes(self, line, n):
        """Two different lines never collide on (channel, local)."""
        amap = GroupAddressMap(n)
        a = amap.route(line * 64)
        b = amap.route((line + 1) * 64)
        assert a != b


class TestCacheProperties:
    @given(st.lists(st.tuples(st.integers(0, 255), st.booleans()),
                    min_size=1, max_size=400))
    @settings(max_examples=60)
    def test_occupancy_and_conservation(self, ops):
        """Ways never exceeded; hits + misses == accesses."""
        c = SetAssocCache(4096, 2)  # 32 sets, 2 ways
        for line, w in ops:
            c.access(line * 64, w)
            assert all(len(s) <= 2 for s in c._sets)
        assert c.n_hits + c.n_misses == len(ops)

    @given(st.lists(st.integers(0, 63), min_size=2, max_size=100))
    @settings(max_examples=60)
    def test_immediate_rereference_hits(self, lines):
        c = SetAssocCache(8192, 2)
        for line in lines:
            c.access(line * 64, False)
            hit, _ = c.access(line * 64, False)
            assert hit

    @given(st.lists(st.tuples(st.integers(0, 255), st.booleans()),
                    min_size=1, max_size=300))
    @settings(max_examples=40)
    def test_dirty_lines_eventually_written_back(self, ops):
        """Every dirty line is either still resident or was evicted dirty."""
        c = SetAssocCache(2048, 2)
        written = set()
        evicted_dirty = set()
        for line, w in ops:
            addr = line * 64
            if w:
                written.add(addr)
            _, ev = c.access(addr, w)
            if ev is not None and ev.dirty:
                evicted_dirty.add(ev.line_addr)
        for addr in written:
            assert c.contains(addr) or addr in evicted_dirty


class TestPatternProperties:
    @given(st.integers(1, 500), st.integers(64, 1 << 22),
           st.integers(0, 1 << 60))
    @settings(max_examples=100)
    def test_offsets_always_in_bounds(self, n, size, seed):
        rng = np.random.default_rng(seed)
        for gen in (
            lambda: patterns.random_offsets(rng, n, size),
            lambda: patterns.hotspot_offsets(rng, n, size),
            lambda: patterns.sequential_offsets(0, n, size)[0],
            lambda: patterns.strided_offsets(0, n, size, 64)[0],
        ):
            offs = gen()
            assert (offs >= 0).all()
            assert (offs < size).all()

    @given(st.integers(1, 100), st.integers(512, 1 << 16))
    @settings(max_examples=50)
    def test_sequential_resumption_is_seamless(self, n, size):
        full, _ = patterns.sequential_offsets(0, 2 * n, size)
        first, cur = patterns.sequential_offsets(0, n, size)
        second, _ = patterns.sequential_offsets(cur, n, size)
        assert (np.concatenate([first, second]) == full).all()


class TestVmProperties:
    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=300,
                    unique=True))
    @settings(max_examples=50)
    def test_pagetable_translation_consistent(self, vpages):
        pt = PageTable()
        for i, vp in enumerate(vpages):
            pt.map_page(vp, group=i % 3, frame=i)
        vlines = np.asarray([vp * PAGE_BYTES + 64 for vp in vpages])
        groups, gaddr = pt.translate_lines(vlines)
        for i, vp in enumerate(vpages):
            assert groups[i] == i % 3
            assert gaddr[i] == i * PAGE_BYTES + 64

    @given(st.integers(1, 64))
    @settings(max_examples=30)
    def test_framepool_never_double_allocates(self, n_frames):
        p = FramePool(n_frames * PAGE_BYTES, group=0)
        seen = set()
        while (f := p.allocate()) is not None:
            assert f not in seen
            seen.add(f)
        assert len(seen) == n_frames

    @given(st.lists(st.integers(1, 1 << 20), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_layout_regions_disjoint(self, sizes):
        lay = VirtualLayout()
        for i, s in enumerate(sizes):
            lay.place(f"o{i}", s)
        regions = lay.all_regions()
        for a, b in zip(regions, regions[1:]):
            assert a.vend <= b.vbase


class TestClassifierProperties:
    metrics = st.floats(min_value=0, max_value=1e4, allow_nan=False)

    @given(metrics, metrics)
    @settings(max_examples=200)
    def test_total_function(self, mpki, stall):
        assert classify_metrics(mpki, stall) in ObjectType

    @given(metrics, metrics, metrics, metrics)
    @settings(max_examples=100)
    def test_monotone_in_mpki(self, m1, m2, stall, thr_bw):
        """Raising MPKI never moves an object from intensive to POW."""
        t = Thresholds(thr_lat=1.0, thr_bw=thr_bw)
        lo, hi = sorted((m1, m2))
        if classify_metrics(lo, stall, t) != ObjectType.POW:
            assert classify_metrics(hi, stall, t) != ObjectType.POW


class TestRngProperties:
    @given(st.text(max_size=20), st.text(max_size=20))
    @settings(max_examples=100)
    def test_seed_stability_and_range(self, a, b):
        s = derive_seed(a, b)
        assert s == derive_seed(a, b)
        assert 0 <= s < (1 << 64)

    @given(st.integers(0, 10_000))
    @settings(max_examples=50)
    def test_naming_injective_over_sites(self, site):
        assert name_from_site(site) == name_from_site(site)
        assert name_from_site(site) != name_from_site(site + 1)
