"""Tests for device timing parameters and presets (paper Table II)."""

import dataclasses

import pytest

from repro.memdev.presets import DDR3, HBM, LPDDR2, PRESETS, RLDRAM3, preset
from repro.memdev.timing import DeviceTiming


class TestTableII:
    """The presets must encode the paper's Table II verbatim (timings)."""

    @pytest.mark.parametrize("dev,tck,tras,trcd,trc,trfc", [
        (DDR3, 1.07, 35.0, 13.75, 48.75, 160.0),
        (HBM, 2.0, 33.0, 15.0, 48.0, 160.0),
        (RLDRAM3, 0.93, 6.0, 2.0, 8.0, 110.0),
        (LPDDR2, 1.875, 42.0, 15.0, 60.0, 130.0),
    ])
    def test_timing_values(self, dev, tck, tras, trcd, trc, trfc):
        assert dev.tCK_ns == tck
        assert dev.tRAS_ns == tras
        assert dev.tRCD_ns == trcd
        assert dev.tRC_ns == trc
        assert dev.tRFC_ns == trfc

    @pytest.mark.parametrize("dev,bl,banks,rowbuf,rows,width", [
        (DDR3, 8, 8, 128, 32 * 1024, 8),
        (HBM, 4, 8, 2048, 32 * 1024, 128),
        (RLDRAM3, 8, 16, 16, 8 * 1024, 8),
        (LPDDR2, 4, 8, 1024, 8 * 1024, 32),
    ])
    def test_architecture_values(self, dev, bl, banks, rowbuf, rows, width):
        assert dev.burst_length == bl
        assert dev.n_banks == banks
        assert dev.row_buffer_bytes == rowbuf
        assert dev.n_rows == rows
        assert dev.device_width_bits == width

    def test_ddr3_lpddr2_power_values_match_table(self):
        assert DDR3.standby_mw_per_gb == 256.0
        assert DDR3.active_w_per_gb == 1.5
        assert LPDDR2.standby_mw_per_gb == 6.5
        assert LPDDR2.active_w_per_gb == 0.4
        assert HBM.standby_mw_per_gb == 335.0
        assert HBM.active_w_per_gb == 4.5

    def test_rldram_power_follows_prose_not_table(self):
        """Sec. II prose: RLDRAM power 4-5x DDR3 (Table II's 30 mW/GB
        contradicts it); the preset must sit in the 4-5x band."""
        ratio_standby = RLDRAM3.standby_mw_per_gb / DDR3.standby_mw_per_gb
        ratio_active = RLDRAM3.active_w_per_gb / DDR3.active_w_per_gb
        assert 4.0 <= ratio_standby <= 5.0
        assert 4.0 <= ratio_active <= 5.0


class TestDerivedTimings:
    def test_trp_is_trc_minus_tras(self):
        assert DDR3.tRP_ns == pytest.approx(13.75)
        assert RLDRAM3.tRP_ns == pytest.approx(2.0)

    def test_latency_ordering_rldram_fastest(self):
        """RLDRAM's raison d'etre: lowest access latency of the four."""
        for other in (DDR3, HBM, LPDDR2):
            assert RLDRAM3.row_conflict_latency < other.row_conflict_latency
            assert RLDRAM3.row_miss_latency < other.row_miss_latency

    def test_bandwidth_ordering_hbm_highest_lpddr_lowest(self):
        """HBM's raison d'etre: highest peak bandwidth; LPDDR lowest."""
        bws = {d.name: d.peak_bandwidth_gbps()
               for d in (DDR3, HBM, RLDRAM3, LPDDR2)}
        assert bws["HBM"] == max(bws.values())
        assert bws["LPDDR2"] == min(bws.values())

    def test_row_latencies_monotone(self):
        for dev in (DDR3, HBM, RLDRAM3, LPDDR2):
            assert (dev.row_hit_latency < dev.row_miss_latency
                    < dev.row_conflict_latency)

    def test_effective_row_scales_by_ganged_devices(self):
        assert DDR3.devices_per_channel == 8
        assert DDR3.effective_row_bytes == 1024
        assert HBM.devices_per_channel == 1
        assert HBM.effective_row_bytes == 2048
        assert LPDDR2.effective_row_bytes == 1024

    def test_transfer_scales_with_width(self):
        """Per-line transfer: LPDDR2 slowest, HBM fastest of the planar."""
        assert LPDDR2.transfer_ns(64) > DDR3.transfer_ns(64)
        assert HBM.transfer_ns(64) <= DDR3.transfer_ns(64) + 1e-9

    def test_transfer_chains_bursts(self):
        one = DDR3.transfer_ns(64)
        assert DDR3.transfer_ns(128) == pytest.approx(2 * one)

    def test_tccd_positive_and_small(self):
        for dev in (DDR3, HBM, RLDRAM3, LPDDR2):
            assert 1 <= dev.tCCD <= max(dev.tCL, dev.transfer_cycles(64)) + 1

    def test_integer_cycle_ceiling(self):
        assert DDR3.tRCD == 14  # ceil(13.75)
        assert RLDRAM3.tRC == 8


class TestValidationAndLookup:
    def test_preset_lookup_aliases(self):
        assert preset("rldram") is RLDRAM3
        assert preset("RLDRAM3") is RLDRAM3
        assert preset("lpddr") is LPDDR2
        assert preset("ddr3") is DDR3

    def test_preset_unknown_raises(self):
        with pytest.raises(KeyError, match="DDR5"):
            preset("DDR5")

    def test_presets_registry_covers_four_technologies(self):
        assert {d.name for d in PRESETS.values()} == {
            "DDR3", "HBM", "RLDRAM3", "LPDDR2"}

    def test_tras_greater_than_trc_rejected(self):
        with pytest.raises(ValueError, match="tRAS"):
            dataclasses.replace(DDR3, tRAS_ns=50.0, tRC_ns=49.0)

    def test_non_pow2_burst_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(DDR3, burst_length=3)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DDR3.tCK_ns = 2.0  # type: ignore[misc]
