"""Tests for repro.util: RNG streams, units, validation."""

import math

import numpy as np
import pytest

from repro.util.rng import ROOT_SEED, derive_seed, stream
from repro.util.units import (
    GIB,
    KIB,
    MIB,
    cycles_to_ns,
    mw_per_gb,
    ns_to_cycles,
    watts,
)
from repro.util.validation import (
    check_in,
    check_non_negative,
    check_positive,
    check_power_of_two,
)


class TestRng:
    def test_same_keys_same_stream(self):
        a = stream("x", 1).integers(0, 1 << 30, 16)
        b = stream("x", 1).integers(0, 1 << 30, 16)
        assert (a == b).all()

    def test_different_keys_differ(self):
        a = stream("x", 1).integers(0, 1 << 30, 16)
        b = stream("x", 2).integers(0, 1 << 30, 16)
        assert not (a == b).all()

    def test_key_order_matters(self):
        assert derive_seed("a", "b") != derive_seed("b", "a")

    def test_root_seed_changes_everything(self):
        assert derive_seed("x", root=1) != derive_seed("x", root=2)

    def test_derive_seed_is_64_bit(self):
        s = derive_seed("anything")
        assert 0 <= s < (1 << 64)

    def test_derive_seed_stable_across_calls(self):
        assert derive_seed("mcf", "train") == derive_seed("mcf", "train")

    def test_stream_returns_generator(self):
        assert isinstance(stream("q"), np.random.Generator)

    def test_root_seed_is_documented_constant(self):
        assert ROOT_SEED == 0x4D0CA


class TestUnits:
    def test_sizes(self):
        assert KIB == 1024
        assert MIB == 1024 * KIB
        assert GIB == 1024 * MIB

    def test_ns_to_cycles_at_1ghz_is_identity_for_ints(self):
        assert ns_to_cycles(35.0) == 35

    def test_ns_to_cycles_rounds_up(self):
        assert ns_to_cycles(13.75) == 14
        assert ns_to_cycles(0.93) == 1

    def test_cycles_to_ns_roundtrip(self):
        assert cycles_to_ns(ns_to_cycles(48.0)) == pytest.approx(48.0)

    def test_ns_to_cycles_other_clock(self):
        # 2 GHz: 1 ns = 2 cycles.
        assert ns_to_cycles(1.0, clock_hz=2_000_000_000) == 2

    def test_mw_per_gb_scales_by_capacity(self):
        assert mw_per_gb(256.0, GIB) == pytest.approx(0.256)
        assert mw_per_gb(256.0, GIB // 2) == pytest.approx(0.128)

    def test_watts_scales_by_capacity(self):
        assert watts(1.5, 2 * GIB) == pytest.approx(3.0)


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive("x", 1.5) == 1.5

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_check_positive_rejects(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", bad)

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_check_non_negative_rejects(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    @pytest.mark.parametrize("good", [1, 2, 4, 1024, 1 << 30])
    def test_power_of_two_accepts(self, good):
        assert check_power_of_two("x", good) == good

    @pytest.mark.parametrize("bad", [0, -2, 3, 6, 1000])
    def test_power_of_two_rejects(self, bad):
        with pytest.raises(ValueError):
            check_power_of_two("x", bad)

    def test_check_in(self):
        assert check_in("x", "a", ("a", "b")) == "a"
        with pytest.raises(ValueError, match="x"):
            check_in("x", "c", ("a", "b"))
