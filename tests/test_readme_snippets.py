"""The README's code snippets must actually run (doc rot guard)."""

import pathlib
import re

import pytest

README = pathlib.Path(__file__).parent.parent / "README.md"


def _python_blocks() -> list[str]:
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.S)


class TestReadme:
    def test_has_python_snippets(self):
        assert len(_python_blocks()) >= 1

    def test_quickstart_snippet_runs(self):
        blocks = _python_blocks()
        quickstart = next(b for b in blocks if "profile_app" in b)
        # Shrink the runs so the guard stays fast, then execute verbatim.
        shrunk = quickstart.replace(
            'RunSpec("disparity", "Homogen-DDR3", "homogen", 120_000)',
            'RunSpec("disparity", "Homogen-DDR3", "homogen", 20_000)'
            ).replace(
            'RunSpec("disparity", "Heter-config1", "moca", 120_000)',
            'RunSpec("disparity", "Heter-config1", "moca", 20_000)'
            ).replace(
            'profile_app("disparity")',
            'profile_app("disparity", "train", 20_000)')
        assert "20_000" in shrunk  # the replacements must have fired
        namespace: dict = {}
        exec(compile(shrunk, "README.md", "exec"), namespace)  # noqa: S102
        assert namespace["best"].mem_access_cycles \
            < namespace["base"].mem_access_cycles

    def test_online_snippet_runs(self):
        blocks = _python_blocks()
        online = next(b for b in blocks if "run_online" in b)
        shrunk = online.replace("120_000", "12_000")
        assert "12_000" in shrunk
        namespace: dict = {}
        exec(compile(shrunk, "README.md", "exec"), namespace)  # noqa: S102
        assert namespace["m"].meta["service"]["epochs"] >= 2

    def test_mentions_all_deliverable_paths(self):
        text = README.read_text()
        for path in ("DESIGN.md", "EXPERIMENTS.md", "docs/architecture.md",
                     "examples/quickstart.py", "benchmarks/"):
            assert path in text, path

    def test_install_line_is_offline_safe(self):
        assert "--no-build-isolation" in README.read_text()
