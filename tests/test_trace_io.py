"""Tests for trace persistence (.npz and mmap-directory round-trips)."""

import json

import numpy as np
import pytest

from repro.cpu.hierarchy import CacheHierarchy
from repro.trace.io import TRACE_META_NAME, load_trace, save_trace
from repro.workloads.inputs import build_app_trace


class TestTraceRoundtrip:
    def test_columns_identical(self, tiny_trace, tmp_path):
        path = tmp_path / "t.trace.npz"
        save_trace(tiny_trace, path)
        restored = load_trace(path)
        assert (restored.inst == tiny_trace.inst).all()
        assert (restored.vaddr == tiny_trace.vaddr).all()
        assert (restored.is_write == tiny_trace.is_write).all()
        assert (restored.obj_id == tiny_trace.obj_id).all()
        assert (restored.dep == tiny_trace.dep).all()
        assert restored.total_instructions == tiny_trace.total_instructions

    def test_layout_identical(self, tiny_trace, tmp_path):
        path = tmp_path / "t.trace.npz"
        save_trace(tiny_trace, path)
        restored = load_trace(path)
        assert len(restored.layout.objects) == len(tiny_trace.layout.objects)
        for a, b in zip(restored.layout.objects, tiny_trace.layout.objects):
            assert (a.name, a.vbase, a.size_bytes, a.site) == \
                (b.name, b.vbase, b.size_bytes, b.site)

    def test_resolution_identical(self, tiny_trace, tmp_path):
        path = tmp_path / "t.trace.npz"
        save_trace(tiny_trace, path)
        restored = load_trace(path)
        probe = tiny_trace.vaddr[:500]
        assert (restored.resolve_objects(probe)
                == tiny_trace.resolve_objects(probe)).all()

    def test_cache_filter_identical(self, tiny_trace, tmp_path):
        """The acid test: a restored trace produces the same miss stream."""
        path = tmp_path / "t.trace.npz"
        save_trace(tiny_trace, path)
        restored = load_trace(path)
        s1, _ = CacheHierarchy().filter_trace(tiny_trace)
        s2, _ = CacheHierarchy().filter_trace(restored)
        assert (s1.vline == s2.vline).all()
        assert (s1.kind == s2.kind).all()

    def test_real_app_trace(self, tmp_path):
        trace = build_app_trace("sift", "train", 5_000)
        path = tmp_path / "sift.trace.npz"
        save_trace(trace, path)
        restored = load_trace(path)
        assert len(restored) == len(trace)
        names = {o.name for o in restored.layout.objects}
        assert "dog_pyr" in names

    def test_bad_version_rejected(self, tiny_trace, tmp_path):
        path = tmp_path / "t.trace.npz"
        save_trace(tiny_trace, path)
        # Corrupt the embedded version.
        data = dict(np.load(path))
        doc = json.loads(bytes(data["layout"]).decode())
        doc["version"] = 99
        data["layout"] = np.frombuffer(json.dumps(doc).encode(),
                                       dtype=np.uint8)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_trace(path)


class TestDirectoryFormat:
    """The v2 mmap-native directory format (non-.npz target paths)."""

    def test_round_trip_is_mmap(self, tiny_trace, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(tiny_trace, path)
        assert (path / TRACE_META_NAME).exists()
        restored = load_trace(path)
        assert isinstance(restored.inst, np.memmap)
        assert not restored.inst.flags.writeable
        for name in ("inst", "vaddr", "is_write", "obj_id", "dep"):
            got, want = getattr(restored, name), getattr(tiny_trace, name)
            assert got.dtype == want.dtype and (got == want).all(), name
        assert restored.total_instructions == tiny_trace.total_instructions

    def test_layout_and_resolution_identical(self, tiny_trace, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(tiny_trace, path)
        restored = load_trace(path)
        for a, b in zip(restored.layout.objects, tiny_trace.layout.objects):
            assert (a.name, a.vbase, a.size_bytes, a.site) == \
                (b.name, b.vbase, b.size_bytes, b.site)
        probe = tiny_trace.vaddr[:500]
        assert (restored.resolve_objects(probe)
                == tiny_trace.resolve_objects(probe)).all()

    def test_cache_filter_identical(self, tiny_trace, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(tiny_trace, path)
        restored = load_trace(path)
        s1, _ = CacheHierarchy().filter_trace(tiny_trace)
        s2, _ = CacheHierarchy().filter_trace(restored)
        assert (s1.vline == s2.vline).all()
        assert (s1.kind == s2.kind).all()

    def test_bad_version_rejected(self, tiny_trace, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(tiny_trace, path)
        meta = path / TRACE_META_NAME
        doc = json.loads(meta.read_text())
        doc["version"] = 99
        meta.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="version"):
            load_trace(path)

    def test_wrong_dtype_rejected(self, tiny_trace, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(tiny_trace, path)
        np.save(path / "obj_id", tiny_trace.obj_id.astype(np.int64))
        with pytest.raises(ValueError, match="obj_id"):
            load_trace(path)
