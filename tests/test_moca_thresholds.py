"""Tests for the empirical threshold search (paper Sec. IV-C)."""

import pytest

from repro.moca.classify import Thresholds
from repro.moca.thresholds import ThresholdScore, best_thresholds, search_thresholds


@pytest.fixture(scope="module")
def scores():
    return search_thresholds(
        apps=("gcc",),
        thr_lat_candidates=(1.0, 1e6),
        thr_bw_candidates=(20.0,),
        n_accesses=30_000,
    )


class TestSearch:
    def test_grid_size(self, scores):
        assert len(scores) == 2

    def test_sorted_best_first(self, scores):
        edps = [s.mean_memory_edp for s in scores]
        assert edps == sorted(edps)

    def test_scores_carry_thresholds(self, scores):
        lats = {s.thresholds.thr_lat for s in scores}
        assert lats == {1.0, 1e6}

    def test_promoting_hot_objects_beats_none(self, scores):
        """Thr_Lat=inf classifies everything POW (all LPDDR).  For gcc —
        whose rtl_pool is the paper's promotable object — the paper
        threshold must win on access time."""
        by_lat = {s.thresholds.thr_lat: s for s in scores}
        assert (by_lat[1.0].mean_access_cycles
                < by_lat[1e6].mean_access_cycles)

    def test_best_thresholds_returns_thresholds(self):
        t = best_thresholds(apps=("gcc",),
                            thr_lat_candidates=(1.0,),
                            thr_bw_candidates=(20.0,),
                            n_accesses=20_000)
        assert isinstance(t, Thresholds)
        assert t.thr_lat == 1.0
