"""Tests for the stride prefetcher and its hierarchy integration."""

import numpy as np
import pytest

from repro.cpu.hierarchy import CacheHierarchy, KIND_PREFETCH
from repro.cpu.prefetch import StridePrefetcher
from repro.trace.builder import ObjectBehavior, TraceBuilder
from repro.util.rng import stream
from repro.util.units import MIB


class TestStridePrefetcher:
    def test_needs_two_confirming_strides(self):
        pf = StridePrefetcher(degree=2)
        assert pf.on_miss(1, 0) == []          # first touch
        assert pf.on_miss(1, 64) == []         # stride learned, unconfirmed
        out = pf.on_miss(1, 128)               # stride confirmed
        assert out == [192, 256]
        assert pf.n_streams_armed == 1

    def test_detects_larger_strides(self):
        pf = StridePrefetcher(degree=1)
        pf.on_miss(1, 0)
        pf.on_miss(1, 256)
        assert pf.on_miss(1, 512) == [768]

    def test_stride_change_disarms(self):
        pf = StridePrefetcher(degree=1)
        pf.on_miss(1, 0)
        pf.on_miss(1, 64)
        pf.on_miss(1, 128)                     # armed
        assert pf.on_miss(1, 1024) == []       # broken stride
        assert pf.on_miss(1, 1088) == []       # re-learning
        assert pf.on_miss(1, 1152) == [1216]   # re-armed

    def test_random_stream_never_arms(self):
        rng = np.random.default_rng(5)
        pf = StridePrefetcher(degree=2)
        issued = sum(len(pf.on_miss(1, int(a) * 64))
                     for a in rng.integers(0, 1 << 20, 500))
        assert issued < 50  # accidental equal strides only

    def test_streams_independent(self):
        pf = StridePrefetcher(degree=1)
        pf.on_miss(1, 0)
        pf.on_miss(2, 0)
        pf.on_miss(1, 64)
        pf.on_miss(2, 128)
        assert pf.on_miss(1, 128) == [192]
        assert pf.on_miss(2, 256) == [384]

    def test_table_eviction(self):
        pf = StridePrefetcher(degree=1, table_size=2)
        pf.on_miss(1, 0)
        pf.on_miss(2, 0)
        pf.on_miss(3, 0)  # evicts stream 1
        pf.on_miss(1, 64)
        assert pf.on_miss(1, 128) == []  # had to re-learn from scratch

    def test_validation(self):
        with pytest.raises(ValueError):
            StridePrefetcher(degree=0)
        with pytest.raises(ValueError):
            StridePrefetcher(table_size=0)

    def test_reset(self):
        pf = StridePrefetcher()
        pf.on_miss(1, 0)
        pf.reset()
        assert pf.n_issued == 0
        assert pf.on_miss(1, 64) == []  # table cleared


class TestHierarchyIntegration:
    def _trace(self):
        b = [ObjectBehavior("streamy", 8 * MIB, 1.0, pattern="strided",
                            stride=256, gap_mean=4, burst_mean=64, site=1)]
        return TraceBuilder(b).build(30_000, stream("pf", "trace"))

    def test_prefetch_reduces_demand_misses(self):
        t = self._trace()
        plain, plain_stats = CacheHierarchy().filter_trace(t)
        pf_stream, pf_stats = CacheHierarchy(
            prefetcher=StridePrefetcher(degree=2)).filter_trace(t)
        assert pf_stats.l2_mpki < plain_stats.l2_mpki * 0.7

    def test_prefetch_records_in_stream(self):
        t = self._trace()
        h = CacheHierarchy(prefetcher=StridePrefetcher(degree=2))
        s, _ = h.filter_trace(t)
        assert (s.kind == KIND_PREFETCH).sum() > 0
        assert h.n_prefetches > 0

    def test_prefetches_not_demand(self):
        t = self._trace()
        s, _ = CacheHierarchy(
            prefetcher=StridePrefetcher(degree=2)).filter_trace(t)
        assert not s.demand_mask[s.kind == KIND_PREFETCH].any()

    def test_core_counts_prefetches_without_stall(self):
        from repro.cpu.core import InOrderWindowCore
        from repro.memctrl.system import ChannelGroup, MemorySystem
        from repro.memdev.presets import DDR3
        t = self._trace()
        s, _ = CacheHierarchy(
            prefetcher=StridePrefetcher(degree=2)).filter_trace(t)
        memsys = MemorySystem({"main": ChannelGroup(DDR3, 4, 16 * MIB)})
        groups = np.zeros(len(s), dtype=np.int32)
        gaddrs = (s.vline - s.vline.min()) % (16 * MIB)
        core = InOrderWindowCore(s, groups, gaddrs)
        res = core.run_to_completion(memsys)
        assert res.n_prefetches > 0
        # Prefetches never contribute to demand latency accounting.
        assert res.n_demand + res.n_writebacks + res.n_prefetches == len(s)

    def test_prefetch_absorbs_demand_misses_without_slowdown(self):
        """The model-honest effect: prefetching converts most streaming
        demand loads into background fills (the episodes already hide
        their latency, so execution time barely moves)."""
        from repro.cpu.core import InOrderWindowCore
        from repro.memctrl.system import ChannelGroup, MemorySystem
        from repro.memdev.presets import DDR3

        def run(prefetcher):
            t = self._trace()
            s, _ = CacheHierarchy(prefetcher=prefetcher).filter_trace(t)
            memsys = MemorySystem({"main": ChannelGroup(DDR3, 4, 16 * MIB)})
            groups = np.zeros(len(s), dtype=np.int32)
            gaddrs = (s.vline - s.vline.min()) % (16 * MIB)
            core = InOrderWindowCore(s, groups, gaddrs)
            return core.run_to_completion(memsys)

        plain = run(None)
        pf = run(StridePrefetcher(degree=2))
        assert pf.n_load_misses < plain.n_load_misses * 0.4
        # Never slower; faster when latency was exposed.
        assert pf.cycles <= plain.cycles * 1.05
