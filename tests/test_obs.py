"""Tests for the observability layer: registry, sinks, provenance, CLI."""

import json

import pytest

from repro.obs import (
    OBS,
    ProgressReporter,
    Registry,
    chrome_trace_doc,
    config_hash,
    read_jsonl,
    run_meta,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.registry import NULL_SPAN
from repro.sim.config import HETER_CONFIG1, HOMOGEN_DDR3
from repro.sim.spec import RunSpec, run

N = 15_000


@pytest.fixture
def obs():
    """The global registry, enabled and clean; restored afterwards."""
    OBS.reset().enable()
    try:
        yield OBS
    finally:
        OBS.reset().disable()


class TestRegistry:
    def test_disabled_is_inert(self):
        reg = Registry()
        reg.add("x", 5)
        reg.gauge("g", 1.0)
        assert reg.span("s") is NULL_SPAN
        with reg.span("s"):
            pass
        assert reg.counters == {} and reg.gauges == {} and reg.events == []

    def test_null_span_is_shared_and_chainable(self):
        reg = Registry()
        s = reg.span("a", foo=1)
        assert s is reg.span("b") is NULL_SPAN
        assert s.set(bar=2) is s

    def test_counters_and_gauges(self):
        reg = Registry(enabled=True)
        reg.add("req")
        reg.add("req", 3)
        reg.gauge("occ", 7)
        reg.gauge("occ", 2)
        snap = reg.snapshot()
        assert snap["counters"]["req"] == 4
        assert snap["gauges"]["occ"] == 2

    def test_span_nesting_depths_and_parents(self):
        reg = Registry(enabled=True)
        with reg.span("outer"):
            with reg.span("mid", key="v"):
                with reg.span("inner"):
                    pass
            with reg.span("mid2"):
                pass
        outer, mid, inner, mid2 = reg.events
        assert [e.depth for e in reg.events] == [0, 1, 2, 1]
        assert mid.parent_id == outer.span_id
        assert inner.parent_id == mid.span_id
        assert mid2.parent_id == outer.span_id
        assert reg.max_depth == 2
        assert all(e.end_ns is not None and e.duration_ns >= 0
                   for e in reg.events)
        assert mid.args == {"key": "v"}

    def test_phase_seconds_aggregates_by_name(self):
        reg = Registry(enabled=True)
        for _ in range(3):
            with reg.span("phase"):
                pass
        phases = reg.phase_seconds()
        assert set(phases) == {"phase"}
        assert phases["phase"] >= 0.0

    def test_listener_fires_on_close(self):
        reg = Registry(enabled=True)
        closed = []
        reg.add_listener(lambda e: closed.append(e.name))
        with reg.span("a"):
            with reg.span("b"):
                pass
        assert closed == ["b", "a"]

    def test_warn_prints_once_and_records(self, capsys):
        reg = Registry(enabled=True)
        reg.warn("something odd")
        reg.warn("something odd")
        err = capsys.readouterr().err
        assert err.count("something odd") == 1
        instants = [e for e in reg.events if e.kind == "instant"]
        assert len(instants) == 2
        assert reg.counters["obs.warnings"] == 2

    def test_warn_reaches_stderr_even_when_disabled(self, capsys):
        reg = Registry()
        reg.warn("disabled but audible")
        assert "disabled but audible" in capsys.readouterr().err
        assert reg.events == []

    def test_reset_clears_everything(self):
        reg = Registry(enabled=True)
        with reg.span("s"):
            reg.add("c")
        reg.reset()
        assert reg.events == [] and reg.counters == {}


class TestSinks:
    def _populated(self):
        reg = Registry(enabled=True)
        with reg.span("outer", system="X"):
            with reg.span("inner"):
                reg.add("mem.ch0.requests", 10)
            reg.warn("note")
        reg.gauge("occ", 3)
        return reg

    def test_jsonl_round_trip(self, tmp_path):
        reg = self._populated()
        path = write_jsonl(reg, tmp_path / "events.jsonl")
        records = read_jsonl(path)
        assert records[0]["type"] == "header"
        spans = [r for r in records if r["type"] == "span"]
        assert [s["name"] for s in spans] == ["outer", "inner"]
        assert spans[1]["parent_id"] == spans[0]["span_id"]
        assert any(r["type"] == "instant" for r in records)
        snap = records[-1]
        assert snap["type"] == "snapshot"
        assert snap["counters"]["mem.ch0.requests"] == 10
        assert snap["gauges"]["occ"] == 3

    def test_chrome_trace_structure(self, tmp_path):
        reg = self._populated()
        path = write_chrome_trace(reg, tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"outer", "inner"}
        for e in xs:
            assert e["ts"] >= 0 and e["dur"] >= 0
        counters = {e["name"]: e["args"]["value"]
                    for e in events if e["ph"] == "C"}
        assert counters["mem.ch0.requests"] == 10
        assert any(e["ph"] == "M" for e in events)
        assert any(e["ph"] == "i" for e in events)

    def test_chrome_trace_empty_registry(self, tmp_path):
        doc = chrome_trace_doc(Registry(enabled=True))
        assert doc["traceEvents"][0]["ph"] == "M"


class TestInstrumentedRun:
    def test_run_single_records_spans_and_counters(self, obs):
        m = run(RunSpec("stitch", "Homogen-DDR3", "homogen", N))
        # >= 3 nesting levels (run -> placement/core_replay and, on a
        # cold cache, cache_filter below run; moca runs nest deeper).
        names = {e.name for e in obs.spans()}
        assert any(n.startswith("run.stitch") for n in names)
        assert "placement" in names and "core_replay" in names
        # per-module request counters reached the registry
        mem = {k: v for k, v in obs.counters.items()
               if k.startswith("mem.") and k.endswith(".requests")}
        assert mem and sum(mem.values()) == m.n_requests
        # core counters published once, post-run
        assert obs.counters["core0.load_misses"] == m.n_load_misses
        assert obs.counters["core0.stall_cycles"] == m.load_stall_cycles

    def test_moca_run_has_three_span_levels(self, obs):
        # Unique trace length so the memoized profiling pass runs cold
        # (a cached profile would skip the deepest spans).
        run(RunSpec("gcc", "Heter-config1", "moca", 15_500))
        assert obs.max_depth >= 2  # depth 2 == three levels (0, 1, 2)
        names = {e.name for e in obs.spans()}
        assert "moca.profile" in names
        placed = [k for k in obs.counters if k.startswith("alloc.placed.")]
        assert placed

    def test_run_meta_attached_to_metrics(self, obs):
        m = run(RunSpec("stitch", "Homogen-DDR3", "homogen", N))
        assert m.meta["config"]["name"] == "Homogen-DDR3"
        assert len(m.meta["config"]["hash"]) == 16
        assert m.meta["policy"] == "homogen"
        assert "counters" in m.meta and "phase_seconds" in m.meta
        assert m.to_dict()["meta"]["workload"] == "stitch"

    def test_meta_present_without_obs(self):
        m = run(RunSpec("stitch", "Homogen-DDR3", "homogen", N))
        assert m.meta["config"]["hash"]
        assert "counters" not in m.meta  # snapshot only when enabled


class TestProvenance:
    def test_config_hash_stable_and_distinct(self):
        assert config_hash(HOMOGEN_DDR3) == config_hash(HOMOGEN_DDR3)
        assert config_hash(HOMOGEN_DDR3) != config_hash(HETER_CONFIG1)

    def test_run_meta_fields(self):
        meta = run_meta(config=HETER_CONFIG1, policy="moca",
                        fidelity="tiny", note="x")
        assert meta["schema"] == 1
        assert meta["fidelity"] == {"name": "tiny"}
        assert meta["note"] == "x"
        assert meta["seed"] == 0x4D0CA


class TestProgressReporter:
    def test_reports_shallow_spans_only(self):
        import io
        reg = Registry(enabled=True)
        buf = io.StringIO()
        reporter = ProgressReporter(stream=buf, max_depth=1).attach(reg)
        with reg.span("top"):
            with reg.span("mid"):
                with reg.span("deep"):
                    pass
        out = buf.getvalue()
        assert "top" in out and "mid" in out and "deep" not in out
        assert reporter.n_reported == 2
        reporter.detach(reg)
        with reg.span("after"):
            pass
        assert "after" not in buf.getvalue()


class TestSweepWorkersWarning:
    def test_garbage_env_warns_once(self, monkeypatch, capsys):
        from repro.experiments.runner import sweep_workers
        OBS.reset()  # clear warn-once memory from other tests
        monkeypatch.setenv("REPRO_WORKERS", "garbage")
        assert sweep_workers() == 1
        assert sweep_workers() == 1
        err = capsys.readouterr().err
        assert err.count("REPRO_WORKERS='garbage'") == 1

    def test_valid_env_is_silent(self, monkeypatch, capsys):
        from repro.experiments.runner import sweep_workers
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert sweep_workers() == 3
        assert capsys.readouterr().err == ""


class TestRenderBarsRegression:
    def test_all_nonpositive_cells_fall_back_to_unit_peak(self):
        from repro.experiments.runner import FigureResult
        fig = FigureResult("figX", "degenerate", ["k", "a", "b"])
        fig.add_row("r1", 0.0, -1.0)
        fig.add_row("r2", 0, 0)
        out = fig.render_bars()  # must not raise ValueError
        assert "figX" in out and "r1" in out

    def test_positive_cells_still_scale(self):
        from repro.experiments.runner import FigureResult
        fig = FigureResult("figY", "ok", ["k", "a"])
        fig.add_row("r1", 2.0)
        assert "#" in fig.render_bars(width=10)


class TestCliObsFlags:
    def test_run_with_trace_and_dump(self, tmp_path, capsys):
        from repro.__main__ import main
        OBS.reset().disable()
        trace = tmp_path / "t.json"
        dump = tmp_path / "d.jsonl"
        try:
            assert main(["run", "stitch", "--system", "Homogen-DDR3",
                         "--policy", "homogen", "--accesses", "10000",
                         "--trace", str(trace),
                         "--obs-dump", str(dump)]) == 0
        finally:
            OBS.reset().disable()
        doc = json.loads(trace.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        assert read_jsonl(dump)[-1]["type"] == "snapshot"
        assert "chrome trace written" in capsys.readouterr().err


class TestFigureMetaPersistence:
    def test_save_figure_merges_meta(self, tmp_path):
        from repro.experiments.runner import FigureResult
        from repro.experiments.store import load_figure, save_figure
        fig = FigureResult("figZ", "t", ["k", "v"])
        fig.add_row("a", 1.0)
        path = save_figure(fig, tmp_path, meta=run_meta(fidelity="tiny"))
        loaded = load_figure(path)
        assert loaded.meta["fidelity"] == {"name": "tiny"}
        assert loaded.rows == fig.rows
