"""Tests for the interval core model: episodes, MLP, stall accounting."""

import numpy as np
import pytest

from repro.cpu.core import CoreParams, InOrderWindowCore
from repro.cpu.hierarchy import KIND_LOAD, KIND_WRITEBACK, MissStream
from repro.memctrl.system import ChannelGroup, MemorySystem
from repro.memdev.presets import DDR3
from repro.util.units import MIB


def _stream(inst, dep=None, kind=None, total=None, addr_stride=64 * 997):
    n = len(inst)
    return MissStream(
        inst=np.asarray(inst, dtype=np.int64),
        vline=np.arange(n, dtype=np.int64) * addr_stride,
        obj_id=np.zeros(n, dtype=np.int32),
        dep=np.asarray(dep if dep is not None else [False] * n, dtype=bool),
        kind=np.asarray(kind if kind is not None else [KIND_LOAD] * n,
                        dtype=np.int8),
        total_instructions=total or (int(inst[-1]) + 100 if n else 100),
    )


def _translate(stream):
    groups = np.zeros(len(stream), dtype=np.int32)
    gaddrs = stream.vline % (8 * MIB)
    return groups, gaddrs


def _system():
    return MemorySystem({"main": ChannelGroup(DDR3, 1, 8 * MIB)})


def run(stream, params=None):
    groups, gaddrs = _translate(stream)
    core = InOrderWindowCore(stream, groups, gaddrs, params)
    return core.run_to_completion(_system())


class TestEpisodes:
    def test_empty_stream_pure_compute(self):
        s = _stream([], total=1000)
        r = run(s)
        assert r.cycles == 1000
        assert r.n_load_misses == 0

    def test_single_miss_full_exposure(self):
        s = _stream([10])
        r = run(s)
        assert r.n_episodes == 1
        assert r.n_load_misses == 1
        # A lone load miss exposes its whole memory latency.
        assert r.load_stall_cycles == r.mem_access_cycles

    def test_independent_close_misses_overlap(self):
        """Two misses 10 instructions apart (inside the ROB) overlap, so
        total stall is well below 2x one miss's latency."""
        solo = run(_stream([10]))
        pair = run(_stream([10, 20]))
        assert pair.n_episodes == 1
        assert pair.load_stall_cycles < 2 * solo.load_stall_cycles

    def test_dependent_misses_serialize(self):
        dep = run(_stream([10, 20], dep=[False, True]))
        indep = run(_stream([10, 20]))
        assert dep.n_episodes == 2
        assert indep.n_episodes == 1
        assert dep.load_stall_cycles > indep.load_stall_cycles

    def test_rob_window_limits_overlap(self):
        p = CoreParams(rob_size=84)
        far = run(_stream([10, 200]), p)  # 190 apart > ROB
        assert far.n_episodes == 2

    def test_mshr_limits_overlap(self):
        p = CoreParams(mshr=2)
        insts = [10 + 2 * i for i in range(8)]
        r = run(_stream(insts), p)
        assert r.n_episodes >= 4  # ceil(8 / 2)

    def test_stall_per_miss_lower_with_mlp(self):
        chase = run(_stream([50 * i for i in range(1, 11)],
                            dep=[True] * 10))
        streamy = run(_stream([10 + 4 * i for i in range(10)]))
        assert streamy.stall_per_load_miss < chase.stall_per_load_miss / 2

    def test_writebacks_do_not_stall(self):
        s = _stream([10, 12], kind=[KIND_LOAD, KIND_WRITEBACK])
        r = run(s)
        assert r.n_load_misses == 1
        assert r.n_writebacks == 1

    def test_cycles_include_compute_tail(self):
        s = _stream([10], total=100_000)
        r = run(s)
        assert r.cycles > 100_000

    def test_ipc_reflects_stalls(self):
        light = run(_stream([10], total=100_000))
        heavy = run(_stream([10 * i for i in range(1, 101)],
                            dep=[True] * 100, total=100_000))
        assert heavy.ipc < light.ipc < 1.01

    def test_per_object_attribution_sums(self):
        s = _stream([10, 30, 300, 320])
        r = run(s)
        assert sum(r.load_misses_by_obj.values()) == r.n_load_misses
        assert sum(r.stall_by_obj.values()) == r.load_stall_cycles

    def test_mem_access_time_sums_demand_latencies(self):
        s = _stream([10, 1000])
        groups, gaddrs = _translate(s)
        core = InOrderWindowCore(s, groups, gaddrs)
        memsys = _system()
        r = core.run_to_completion(memsys)
        assert r.mem_access_cycles > 0
        assert r.n_demand == 2


class TestStepping:
    def test_peek_then_run_consistent(self):
        s = _stream([10, 500])
        groups, gaddrs = _translate(s)
        core = InOrderWindowCore(s, groups, gaddrs)
        memsys = _system()
        first_issue = core.peek_next_issue()
        assert first_issue == 10
        core.run_episode(memsys)
        assert core.peek_next_issue() > first_issue
        core.run_episode(memsys)
        assert core.finished
        assert core.peek_next_issue() == 1 << 62

    def test_translation_length_mismatch_rejected(self):
        s = _stream([10])
        with pytest.raises(ValueError):
            InOrderWindowCore(s, np.zeros(2, dtype=np.int32),
                              np.zeros(2, dtype=np.int64))

    def test_start_cycle_offsets_everything(self):
        s = _stream([10])
        groups, gaddrs = _translate(s)
        a = InOrderWindowCore(s, groups, gaddrs, start_cycle=0)
        b = InOrderWindowCore(s, groups, gaddrs, start_cycle=1000)
        ra = a.run_to_completion(_system())
        rb = b.run_to_completion(_system())
        assert rb.cycles > ra.cycles

    def test_max_overlap_property(self):
        assert CoreParams(mshr=20, lq_size=32).max_overlap == 20
        assert CoreParams(mshr=40, lq_size=32).max_overlap == 32


class TestFractionalIPC:
    """Retire-gap arithmetic must be exact for non-integer IPC.

    ``ipc=0.1`` is stored as the nearest binary double, so the old
    ``int(gap / ipc)`` silently lost cycles (``int(3 / 0.1) == 29``).
    ``CoreParams.ipc_ratio`` recovers the intended rational once and all
    gap math is integer from there on."""

    def test_cycles_for_is_exact(self):
        p = CoreParams(ipc=0.1)
        assert p.ipc_ratio == (1, 10)
        assert p.cycles_for(3) == 30  # int(3 / 0.1) gives 29
        assert p.cycles_for(7) == 70
        assert CoreParams(ipc=0.3).cycles_for(3) == 10
        assert CoreParams(ipc=1.5).cycles_for(3) == 2
        assert CoreParams().cycles_for(123) == 123

    @pytest.mark.parametrize("fast", [True, False])
    def test_first_issue_uses_exact_gap(self, fast):
        s = _stream([3])
        groups, gaddrs = _translate(s)
        core = InOrderWindowCore(s, groups, gaddrs, CoreParams(ipc=0.1),
                                 fast_path=fast)
        # 3 instructions at 0.1 IPC = exactly 30 cycles, not 29.
        assert core.peek_next_issue() == 30

    def test_pure_compute_run_is_exact(self):
        r = run(_stream([], total=7), CoreParams(ipc=0.1))
        assert r.cycles == 70

    def test_fractional_gaps_accumulate_exactly(self):
        """Three episodes with 3-instruction gaps at 0.1 IPC: each gap
        contributes exactly 30 cycles of compute, so total cycles equal
        the hand-computed compute time plus the measured memory time."""
        s = _stream([3, 6, 9], dep=[False, True, True], total=9)
        r = run(s, CoreParams(ipc=0.1))
        # Fully serial chain: every episode is one load, so total time
        # decomposes exactly into 3 gaps of 30 cycles plus the measured
        # memory time.  The old float arithmetic gave 29-cycle gaps.
        assert r.cycles == 90 + r.mem_access_cycles
