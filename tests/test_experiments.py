"""Tests for the experiment harness layer (runner + figure modules).

Sweep-backed figures run at *tiny* fidelity here; the full-strength
regeneration lives in ``benchmarks/``.
"""

import pytest

from repro.experiments import TINY, runner
from repro.experiments.runner import FigureResult, geomean
from repro.experiments import fig01, fig08, fig09, fig16, headline, overhead
from repro.experiments import tables
from repro.experiments.__main__ import EXPERIMENTS, main


class TestFigureResult:
    def _fig(self):
        f = FigureResult("figX", "title", ["k", "a", "b"])
        f.add_row("r1", 1.0, 2.0)
        f.add_row("r2", 3.0, 4.0)
        return f

    def test_add_row_validates_width(self):
        f = self._fig()
        with pytest.raises(ValueError):
            f.add_row("r3", 1.0)

    def test_column_and_row_access(self):
        f = self._fig()
        assert f.column("a") == [1.0, 3.0]
        assert f.row("r2") == ["r2", 3.0, 4.0]
        assert f.cell("r1", "b") == 2.0

    def test_missing_row(self):
        with pytest.raises(KeyError):
            self._fig().row("zzz")

    def test_render_contains_everything(self):
        f = self._fig()
        f.notes.append("hello note")
        text = f.render()
        assert "figX" in text and "r1" in text and "hello note" in text
        assert "1.000" in text  # float formatting

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0
        assert geomean([0.0, 2.0]) == pytest.approx(2.0)  # zeros skipped


class TestFidelity:
    def test_presets_registered(self):
        assert set(runner.FIDELITIES) == {"tiny", "default", "full"}

    def test_ordering(self):
        assert (runner.TINY.n_single < runner.DEFAULT.n_single
                < runner.FULL.n_single)

    def test_hashable_for_lru_cache(self):
        assert hash(runner.TINY) == hash(runner.Fidelity("tiny", 30_000,
                                                         20_000))


class TestSweeps:
    def test_single_sweep_covers_grid(self):
        sweep = runner.single_sweep(TINY)
        assert len(sweep) == 10 * len(runner.SINGLE_SYSTEMS)
        assert sweep[("mcf", "MOCA")].policy == "moca"

    def test_single_sweep_memoized(self):
        assert runner.single_sweep(TINY) is runner.single_sweep(TINY)


class TestFigureModules:
    def test_fig01_rows_per_app(self):
        fig = fig01.compute(TINY)
        assert len(fig.rows) == 10

    def test_fig08_fig09_share_sweep(self):
        f8 = fig08.compute(TINY)
        f9 = fig09.compute(TINY)
        assert f8.columns == f9.columns
        assert [r[0] for r in f8.rows] == [r[0] for r in f9.rows]
        # Baseline column is exactly 1 everywhere.
        base = f8.columns.index("Homogen-DDR3")
        assert all(r[base] == pytest.approx(1.0) for r in f8.rows)

    def test_fig16_segments_below_heap(self):
        fig = fig16.compute(TINY)
        for row in fig.rows:
            assert max(row[1], row[2], row[3]) < row[4]

    def test_overhead_small(self):
        fig = overhead.compute(TINY, apps=("gcc",), repeats=1)
        assert len(fig.rows) == 1
        assert fig.rows[0][3] < 200.0

    def test_headline_has_all_claims(self):
        fig = headline.compute(TINY)
        assert len(fig.rows) == 10
        assert all(isinstance(r[2], float) for r in fig.rows)

    def test_tables_static(self):
        t1 = tables.table1()
        t2 = tables.table2()
        assert t1.cell("L2 MSHRs", "value") == 20
        assert t2.cell("# banks", "RLDRAM3") == 16


class TestCli:
    def test_registry_complete(self):
        expected = {"fig01", "fig02", "table1", "table2", "table3",
                    "thresholds", "capacity", "devices", "variance",
                    "taillat", "drift",
                    "fig08", "fig09", "fig10", "fig11", "fig12", "fig13",
                    "fig14", "fig15", "fig16", "overhead", "headline",
                    "smoke", "resilience"}
        assert set(EXPERIMENTS) == expected

    def test_main_runs_one(self, capsys):
        assert main(["table2", "--fidelity", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "RLDRAM3" in out

    def test_main_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
