"""Additional migration-runner coverage: epoch mechanics and metrics."""

import pytest

from repro.sim.config import HETER_CONFIG1
from repro.sim.migration import run_single_migration
from repro.vm.migration import MigrationConfig


class TestEpochMechanics:
    def test_smaller_epochs_more_decisions(self):
        lazy, s_lazy = run_single_migration(
            "sift", HETER_CONFIG1, MigrationConfig(epoch_misses=2_000),
            n_accesses=30_000)
        eager, s_eager = run_single_migration(
            "sift", HETER_CONFIG1, MigrationConfig(epoch_misses=200),
            n_accesses=30_000)
        assert s_eager.n_epochs > s_lazy.n_epochs

    def test_overhead_charged_to_exec_time(self):
        """More migrations must show up as more overhead cycles, and the
        overhead must be part of execution time."""
        quiet, s_quiet = run_single_migration(
            "gcc", HETER_CONFIG1,
            MigrationConfig(epoch_misses=2_000, max_migrations_per_epoch=1),
            n_accesses=25_000)
        busy, s_busy = run_single_migration(
            "gcc", HETER_CONFIG1,
            MigrationConfig(epoch_misses=500, max_migrations_per_epoch=128),
            n_accesses=25_000)
        assert s_busy.overhead_cycles > s_quiet.overhead_cycles
        assert s_busy.n_migrations >= s_quiet.n_migrations

    def test_instruction_conservation(self):
        m, _ = run_single_migration("stitch", HETER_CONFIG1,
                                    n_accesses=20_000)
        assert m.exec_cycles >= m.total_instructions  # ipc=1 floor

    def test_migration_helps_hotset_app(self):
        """gcc's small hot set is migration's best case: aggressive
        migration must beat never-migrating (all pages stay in LPDDR)."""
        never, _ = run_single_migration(
            "gcc", HETER_CONFIG1,
            MigrationConfig(epoch_misses=10**9),  # one epoch, no decisions
            n_accesses=30_000)
        some, stats = run_single_migration(
            "gcc", HETER_CONFIG1,
            MigrationConfig(epoch_misses=500, max_migrations_per_epoch=64),
            n_accesses=30_000)
        assert stats.n_migrations > 0
        assert some.mem_access_cycles < never.mem_access_cycles

    def test_deterministic(self):
        a, sa = run_single_migration("sift", HETER_CONFIG1,
                                     n_accesses=15_000)
        b, sb = run_single_migration("sift", HETER_CONFIG1,
                                     n_accesses=15_000)
        assert a.exec_cycles == b.exec_cycles
        assert sa.n_migrations == sb.n_migrations
