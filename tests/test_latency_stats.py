"""Tests for latency histograms and the variance/robustness experiment."""

import pytest

from repro.memctrl.request import MemRequest
from repro.memctrl.stats import LatencyHistogram, N_BUCKETS
from repro.workloads.inputs import build_app_trace, is_valid_input


class TestLatencyHistogram:
    def test_record_and_mean(self):
        h = LatencyHistogram()
        for v in (10, 20, 30):
            h.record(v)
        assert h.total == 3
        assert h.mean == pytest.approx(20.0)
        assert h.max_cycles == 30

    def test_percentiles_monotone(self):
        h = LatencyHistogram()
        for v in range(1, 1001):
            h.record(v)
        assert h.p50 <= h.p95 <= h.p99 <= h.max_cycles * 2

    def test_percentile_bucket_bounds(self):
        h = LatencyHistogram()
        for _ in range(100):
            h.record(100)  # bucket [64, 127]
        assert h.p50 == 127
        assert h.p99 == 127

    def test_tail_visible(self):
        """99 fast + 1 slow: p50 stays fast, p99+ sees the straggler."""
        h = LatencyHistogram()
        for _ in range(99):
            h.record(10)
        h.record(10_000)
        assert h.p50 < 16
        assert h.percentile(100.0) >= 8191

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(5)
        b.record(500)
        a.merge(b)
        assert a.total == 2
        assert a.max_cycles == 500

    def test_validation(self):
        h = LatencyHistogram()
        with pytest.raises(ValueError):
            h.record(-1)
        with pytest.raises(ValueError):
            h.percentile(0.0)
        with pytest.raises(ValueError):
            h.percentile(101.0)

    def test_empty(self):
        h = LatencyHistogram()
        assert h.mean == 0.0
        assert h.p99 == 0

    def test_huge_latency_clamped_to_last_bucket(self):
        h = LatencyHistogram()
        h.record(1 << 60)
        assert sum(h.counts) == 1
        assert h.counts[N_BUCKETS - 1] == 1

    def test_summary_renders(self):
        h = LatencyHistogram()
        h.record(42)
        assert "p99" in h.summary()


class TestSystemHistogram:
    def test_controller_records_demand_only(self, ddr3_system):
        reqs = [MemRequest(group=0, gaddr=i * 64, issue_cycle=0)
                for i in range(8)]
        reqs.append(MemRequest(group=0, gaddr=9999 * 64, issue_cycle=0,
                               is_write=True, demand=False))
        ddr3_system.service_batch(reqs)
        hist = ddr3_system.latency_histogram()
        assert hist.total == 8  # the writeback is excluded

    def test_group_filter(self, hetero_system):
        hetero_system.service_batch([
            MemRequest(group=0, gaddr=0, issue_cycle=0),
            MemRequest(group=2, gaddr=0, issue_cycle=0),
        ])
        assert hetero_system.latency_histogram("lat").total == 1
        assert hetero_system.latency_histogram("pow").total == 1
        assert hetero_system.latency_histogram().total == 2

    def test_reset_clears(self, ddr3_system):
        ddr3_system.service_one(MemRequest(group=0, gaddr=0, issue_cycle=0))
        ddr3_system.reset_stats()
        assert ddr3_system.latency_histogram().total == 0

    def test_rl_p99_below_lp_p50ish(self, hetero_system):
        """RLDRAM's tail beats LPDDR's body on random traffic."""
        import numpy as np
        rng = np.random.default_rng(11)
        addrs = (rng.integers(0, 8 * (1 << 20) // 64, 300) * 64).tolist()
        for gi in (0, 2):
            for a in addrs:
                hetero_system.service_one(
                    MemRequest(group=gi, gaddr=a, issue_cycle=0))
        rl = hetero_system.latency_histogram("lat")
        lp = hetero_system.latency_histogram("pow")
        assert rl.p99 <= lp.p50 * 4
        assert rl.mean < lp.mean


class TestInputVariants:
    def test_valid_names(self):
        assert is_valid_input("train")
        assert is_valid_input("ref")
        assert is_valid_input("ref2")
        assert is_valid_input("ref17")
        assert not is_valid_input("validation")
        assert not is_valid_input("ref2x")

    def test_variants_differ_from_each_other(self):
        a = build_app_trace("sift", "ref", 5_000)
        b = build_app_trace("sift", "ref2", 5_000)
        assert not (a.vaddr[:200] == b.vaddr[:200]).all()
        assert (a.layout.heap_footprint_bytes()
                != b.layout.heap_footprint_bytes())

    def test_variance_experiment_tiny(self):
        from repro.experiments.runner import Fidelity
        from repro.experiments.variance import compute
        fig = compute(Fidelity("micro-var", 8_000, 4_000), n_variants=2)
        assert len(fig.rows) == 4
        assert fig.columns[-1] == "always_wins"

    def test_variance_needs_two(self):
        from repro.experiments.variance import compute
        with pytest.raises(ValueError):
            compute(n_variants=1)
