"""Tests for the resilient sweep harness (``repro.experiments.resilience``).

Worker crashes, hung units, transient errors, pool rebuilds, the
degraded-serial fallback, and the campaign checkpoint journal.  Fault
injection uses the ``REPRO_CHAOS_DIR`` hook: marker files make the next
unit(s) crash the worker (``os._exit``), hang, or raise.
"""

import json

import pytest

from repro.experiments import engine
from repro.experiments.resilience import (
    CampaignJournal,
    ChaosError,
    ExecutionReport,
    JOURNAL_VERSION,
    RetryPolicy,
    SweepFailure,
    UnitFailure,
    backoff_delay,
    chaos_probe,
    run_resilient,
)
from repro.sim.spec import RunSpec

#: Tiny but real specs — run_resilient only needs key()/describe() and,
#: for the chaos runner below, something cheap to "simulate".
SPECS = [RunSpec(app, "Homogen-DDR3", "homogen", 1_000)
         for app in ("mcf", "milc", "gcc", "lbm")]

#: Fast-retry policy so fault tests don't sit in backoff sleeps.
FAST = RetryPolicy(max_attempts=3, backoff_base=0.01, backoff_cap=0.05)


def _echo_runner(spec):
    """Picklable stand-in for the engine's worker entry."""
    chaos_probe()
    return spec.workload


@pytest.fixture(autouse=True)
def _isolated(monkeypatch):
    for var in ("REPRO_CHAOS_DIR", "REPRO_UNIT_TIMEOUT",
                "REPRO_MAX_ATTEMPTS", "REPRO_CACHE_DIR", "REPRO_WORKERS",
                "REPRO_OVERSUBSCRIBE"):
        monkeypatch.delenv(var, raising=False)
    engine.reset()
    yield
    engine.reset()


class TestRetryPolicy:
    def test_defaults(self):
        p = RetryPolicy()
        assert p.unit_timeout is None
        assert p.max_attempts == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(unit_timeout=0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(max_pool_breaks=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1)

    def test_from_env(self):
        p = RetryPolicy.from_env({"REPRO_UNIT_TIMEOUT": "2.5",
                                  "REPRO_MAX_ATTEMPTS": "7"})
        assert p.unit_timeout == 2.5
        assert p.max_attempts == 7

    def test_from_env_malformed_falls_back(self):
        p = RetryPolicy.from_env({"REPRO_UNIT_TIMEOUT": "soon",
                                  "REPRO_MAX_ATTEMPTS": "many"})
        assert p.unit_timeout is None
        assert p.max_attempts == 3


class TestBackoff:
    def test_deterministic(self):
        p = RetryPolicy()
        assert backoff_delay("k", 1, p) == backoff_delay("k", 1, p)
        assert backoff_delay("k", 1, p) != backoff_delay("k2", 1, p)

    def test_bounds_and_growth(self):
        p = RetryPolicy(backoff_base=0.1, backoff_cap=5.0)
        delays = [backoff_delay("key", a, p) for a in range(1, 12)]
        assert all(0.05 <= d <= 5.0 for d in delays)
        assert delays[-1] == pytest.approx(
            backoff_delay("key", 11, p))  # capped region is stable
        assert max(delays) > delays[0]


class TestSerialExecution:
    def test_all_succeed(self):
        report = run_resilient(SPECS, workers=1, policy=FAST,
                               runner=_echo_runner)
        assert report.ok
        assert report.results == [s.workload for s in SPECS]
        assert report.retries == 0

    def test_transient_errors_are_retried(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        (tmp_path / "error").write_text("2")
        report = run_resilient(SPECS, workers=1, policy=FAST,
                               runner=_echo_runner)
        assert report.ok
        assert report.retries == 2
        assert report.results == [s.workload for s in SPECS]

    def test_persistent_error_fails_terminally(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        (tmp_path / "error").write_text("99")
        report = run_resilient(SPECS[:2], workers=1, policy=FAST,
                               runner=_echo_runner)
        assert not report.ok
        assert len(report.failures) == 2
        for failure in report.failures:
            assert failure.attempts == FAST.max_attempts
            assert "ChaosError" in failure.error
            assert not failure.timed_out
        assert report.results == [None, None]

    def test_report_to_dict(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        (tmp_path / "error").write_text("99")
        report = run_resilient(SPECS[:1], workers=1, policy=FAST,
                               runner=_echo_runner)
        doc = report.to_dict()
        assert doc["units"] == 1
        assert doc["degraded_serial"] is False
        assert doc["failed_units"][0]["attempts"] == 3
        assert doc["failed_units"][0]["unit"] == SPECS[0].describe()


class TestPoolRecovery:
    def test_worker_crash_rebuilds_pool(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        (tmp_path / "crash").write_text("1")
        report = run_resilient(SPECS, workers=2, policy=FAST,
                               runner=_echo_runner)
        assert report.ok
        assert report.pool_breaks == 1
        assert report.retries >= 1
        assert sorted(report.results) == sorted(s.workload for s in SPECS)
        assert not report.degraded_serial

    def test_hung_unit_is_killed_and_charged(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        (tmp_path / "hang").write_text("1 60")
        policy = RetryPolicy(unit_timeout=2.0, max_attempts=3,
                             backoff_base=0.01, backoff_cap=0.05)
        report = run_resilient(SPECS, workers=2, policy=policy,
                               runner=_echo_runner)
        assert report.ok
        assert report.timeouts == 1
        assert report.pool_breaks >= 1
        assert sorted(report.results) == sorted(s.workload for s in SPECS)

    def test_repeated_breaks_degrade_to_serial(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        # Exactly max_pool_breaks crashes: the pool breaks twice in a
        # row, the harness gives up on process isolation, and the serial
        # fallback (chaos budget now spent) finishes the batch.
        (tmp_path / "crash").write_text("2")
        policy = RetryPolicy(max_attempts=5, max_pool_breaks=2,
                             backoff_base=0.01, backoff_cap=0.05)
        report = run_resilient(SPECS[:1], workers=2, policy=policy,
                               runner=_echo_runner)
        assert report.ok
        assert report.degraded_serial
        assert report.pool_breaks == 2
        assert report.results == [SPECS[0].workload]


class TestEngineIntegration:
    def test_execute_survives_transient_errors(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        (tmp_path / "error").write_text("2")
        engine.configure_resilience(FAST)
        metrics = engine.execute(SPECS, phase="sweep.test")
        assert all(m is not None and m.exec_cycles > 0 for m in metrics)
        stats = engine.resilience_stats()
        assert stats["retries"] == 2
        assert stats["failed_units"] == []

    def test_execute_raises_sweep_failure_with_details(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        (tmp_path / "error").write_text("99")
        engine.configure_resilience(FAST)
        with pytest.raises(SweepFailure) as excinfo:
            engine.execute(SPECS[:2], phase="sweep.test")
        assert len(excinfo.value.failures) == 2
        assert excinfo.value.phase == "sweep.test"
        stats = engine.resilience_stats()
        assert len(stats["failed_units"]) == 2

    def test_successes_are_cached_despite_failures(
            self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "cache"
        chaos = tmp_path / "chaos"
        chaos.mkdir()
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(chaos))
        # One unit fails terminally (single attempt, one injected
        # error); siblings succeed and must land in the cache anyway.
        (chaos / "error").write_text("1")
        engine.configure(cache_dir)
        engine.configure_resilience(RetryPolicy(
            max_attempts=1, backoff_base=0.01, backoff_cap=0.05))
        with pytest.raises(SweepFailure):
            engine.execute(SPECS, phase="sweep.test")
        assert engine.cache_stats()["stores"] == len(SPECS) - 1

    def test_configure_resilience_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_ATTEMPTS", "9")
        assert engine.active_retry_policy().max_attempts == 9
        engine.configure_resilience(RetryPolicy(max_attempts=2))
        assert engine.active_retry_policy().max_attempts == 2


class TestCampaignJournal:
    def test_mark_and_resume(self, tmp_path):
        path = tmp_path / ".campaign.json"
        journal = CampaignJournal(path, fidelity="tiny")
        assert not journal.is_done("fig08")
        journal.mark("fig08", "done", seconds=1.5)
        journal.mark("fig09", "failed", error="boom")

        resumed = CampaignJournal(path, fidelity="tiny")
        assert resumed.is_done("fig08")
        assert not resumed.is_done("fig09")
        assert resumed.status("fig09") == {"status": "failed",
                                           "error": "boom"}
        assert set(resumed.figures()) == {"fig08", "fig09"}

    def test_fidelity_mismatch_discards(self, tmp_path):
        path = tmp_path / ".campaign.json"
        CampaignJournal(path, fidelity="tiny").mark("fig08", "done")
        other = CampaignJournal(path, fidelity="default")
        assert not other.is_done("fig08")

    def test_corrupt_journal_resets(self, tmp_path):
        path = tmp_path / ".campaign.json"
        path.write_text("{not json")
        journal = CampaignJournal(path, fidelity="tiny")
        assert journal.figures() == {}
        journal.mark("fig08", "done")
        assert json.loads(path.read_text())["version"] == JOURNAL_VERSION

    def test_clear(self, tmp_path):
        path = tmp_path / ".campaign.json"
        journal = CampaignJournal(path, fidelity="tiny")
        journal.mark("fig08", "done")
        journal.clear()
        assert not CampaignJournal(path, fidelity="tiny").is_done("fig08")

    def test_write_is_atomic(self, tmp_path):
        path = tmp_path / ".campaign.json"
        journal = CampaignJournal(path, fidelity="tiny")
        journal.mark("fig08", "done")
        # No temp debris left behind, and the file is valid JSON.
        assert [p.name for p in tmp_path.iterdir()] == [".campaign.json"]
        assert json.loads(path.read_text())["fidelity"] == "tiny"


class TestChaosProbe:
    def test_noop_without_env(self):
        chaos_probe()  # must not raise

    def test_error_budget_is_shared(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        (tmp_path / "error").write_text("2")
        for _ in range(2):
            with pytest.raises(ChaosError):
                chaos_probe()
        chaos_probe()  # budget spent; back to a no-op

    def test_unit_failure_roundtrip(self):
        f = UnitFailure(index=3, key="k", label="mcf", attempts=2,
                        error="boom", timed_out=True)
        assert f.to_dict() == {"key": "k", "unit": "mcf", "attempts": 2,
                               "error": "boom", "timed_out": True}

    def test_empty_report_is_ok(self):
        assert ExecutionReport().ok
