"""Tests for the persistent result cache and the sweep engine.

Covers the on-disk entry lifecycle (hit/miss/corrupt/stale/refresh/
evict), the engine's cache wiring and precedence rules, lossless
``RunMetrics`` round-trips (including a hypothesis property test),
cross-process reuse through the CLI, and the cold-vs-warm campaign
equivalence the cache exists to provide.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.core import CoreResult
from repro.experiments import engine
from repro.experiments.cache import CACHE_VERSION, CacheStats, ResultCache
from repro.obs.registry import OBS
from repro.sim.metrics import RunMetrics
from repro.sim.spec import RunSpec, run

N = 8_000

SPEC = RunSpec("sift", "Homogen-DDR3", "homogen", N)
SPEC2 = RunSpec("sift", "Homogen-HBM", "homogen", N)


@pytest.fixture(scope="module")
def metrics() -> RunMetrics:
    """One real (small) run shared by the whole module."""
    return run(SPEC)


@pytest.fixture(autouse=True)
def _engine_isolated(monkeypatch):
    """Every test starts with no configured cache and no env fallback."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    engine.reset()
    yield
    engine.reset()


class TestResultCache:
    def test_miss_on_empty(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(SPEC) is None
        assert cache.stats.misses == 1
        assert len(cache) == 0

    def test_put_get_roundtrip(self, tmp_path, metrics):
        cache = ResultCache(tmp_path)
        path = cache.put(SPEC, metrics)
        assert path.name == f"{SPEC.key()}.json"
        restored = cache.get(SPEC)
        assert restored == metrics
        assert restored.per_core == metrics.per_core
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_entry_records_spec_and_version(self, tmp_path, metrics):
        cache = ResultCache(tmp_path)
        doc = json.loads(cache.put(SPEC, metrics).read_text())
        assert doc["version"] == CACHE_VERSION
        assert doc["spec"] == SPEC.canonical()
        assert "repro_version" in doc

    def test_cross_instance_reuse(self, tmp_path, metrics):
        ResultCache(tmp_path).put(SPEC, metrics)
        assert ResultCache(tmp_path).get(SPEC) == metrics

    def test_corrupt_entry_warns_once_and_resimulates(self, tmp_path,
                                                      metrics, capsys):
        cache = ResultCache(tmp_path)
        path = cache.put(SPEC, metrics)
        path.write_text(path.read_text()[:40])  # truncated JSON
        assert cache.get(SPEC) is None
        assert not path.exists()  # corrupt entries are deleted
        assert cache.stats.corrupt == 1
        err = capsys.readouterr().err
        assert err.count("corrupt entry") == 1
        # The slot re-fills and serves normally afterwards.
        cache.put(SPEC, metrics)
        assert cache.get(SPEC) == metrics

    def test_missing_field_is_corrupt_not_crash(self, tmp_path, metrics):
        cache = ResultCache(tmp_path)
        path = cache.put(SPEC, metrics)
        doc = json.loads(path.read_text())
        del doc["metrics"]["exec_cycles"]
        path.write_text(json.dumps(doc))
        assert cache.get(SPEC) is None
        assert cache.stats.corrupt == 1

    def test_stale_version_dropped_silently(self, tmp_path, metrics,
                                            capsys):
        cache = ResultCache(tmp_path)
        path = cache.put(SPEC, metrics)
        doc = json.loads(path.read_text())
        doc["version"] = CACHE_VERSION + 1
        path.write_text(json.dumps(doc))
        assert cache.get(SPEC) is None
        assert not path.exists()
        assert cache.stats.corrupt == 0  # stale, not corrupt
        assert "corrupt" not in capsys.readouterr().err

    def test_refresh_bypasses_read_but_overwrites(self, tmp_path, metrics):
        ResultCache(tmp_path).put(SPEC, metrics)
        cache = ResultCache(tmp_path, refresh=True)
        assert cache.get(SPEC) is None  # hit on disk, still a miss
        cache.put(SPEC, metrics)
        assert cache.stats.misses == 1 and cache.stats.stores == 1
        assert ResultCache(tmp_path).get(SPEC) == metrics

    def test_eviction_keeps_newest(self, tmp_path, metrics):
        cache = ResultCache(tmp_path, max_entries=1)
        p1 = cache.put(SPEC, metrics)
        os.utime(p1, (1, 1))  # force a stale mtime
        p2 = cache.put(SPEC2, metrics)
        assert not p1.exists() and p2.exists()
        assert cache.stats.evicted == 1
        assert len(cache) == 1

    def test_hit_ratio(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.hit_ratio == 0.75
        assert CacheStats().hit_ratio == 0.0
        assert stats.to_dict()["hit_ratio"] == 0.75


class TestMemoLayer:
    """The process-level memo fronting the disk entries: repeat lookups
    skip read+parse, the stat signature keeps sibling processes honest,
    and ``--refresh`` distrusts it wholesale."""

    @pytest.fixture(autouse=True)
    def _obs(self):
        OBS.reset().enable()
        yield
        OBS.reset().disable()

    def test_repeat_get_served_from_memo(self, tmp_path, metrics):
        cache = ResultCache(tmp_path)
        cache.put(SPEC, metrics)  # put seeds the memo
        assert cache.get(SPEC) == metrics
        assert OBS.counters.get("cache.memo_hit") == 1
        assert OBS.counters.get("data_plane.copies_avoided") == 1
        assert cache.stats.hits == 1  # memo hits are still cache hits

    def test_memo_keyed_by_directory(self, tmp_path, metrics):
        ResultCache(tmp_path / "a").put(SPEC, metrics)
        # Same spec, different cache root: the memo entry for "a" must
        # not leak into "b".
        assert ResultCache(tmp_path / "b").get(SPEC) is None

    def test_external_overwrite_invalidates_memo(self, tmp_path, metrics):
        cache = ResultCache(tmp_path)
        path = cache.put(SPEC, metrics)
        # A sibling process replaces the entry: new bytes, new stat
        # signature — our memo entry must be bypassed in favour of disk.
        doc = json.loads(path.read_text())
        doc["metrics"]["exec_cycles"] = doc["metrics"]["exec_cycles"] + 1
        path.write_text(json.dumps(doc))
        got = cache.get(SPEC)
        assert got.exec_cycles == metrics.exec_cycles + 1
        assert "cache.memo_hit" not in OBS.counters

    def test_vanished_file_misses_despite_memo(self, tmp_path, metrics):
        cache = ResultCache(tmp_path)
        cache.put(SPEC, metrics).unlink()
        assert cache.get(SPEC) is None
        assert cache.stats.misses == 1
        assert "cache.memo_hit" not in OBS.counters

    def test_refresh_clears_memo(self, tmp_path, metrics):
        ResultCache(tmp_path).put(SPEC, metrics)
        ResultCache(tmp_path, refresh=True)  # construction clears memo
        assert ResultCache(tmp_path).get(SPEC) == metrics  # via disk
        assert "cache.memo_hit" not in OBS.counters


class TestMetricsRoundTrip:
    def test_real_run_roundtrip_is_equal(self, metrics):
        clone = RunMetrics.from_dict(
            json.loads(json.dumps(metrics.to_dict())))
        assert clone == metrics
        assert clone.per_core == metrics.per_core
        assert clone.memory_edp == metrics.memory_edp

    def test_derived_keys_ignored_on_load(self, metrics):
        doc = metrics.to_dict()
        doc["memory_edp"] = -1.0  # hand-edited artefact lies
        assert RunMetrics.from_dict(doc).memory_edp == metrics.memory_edp

    @settings(max_examples=50, deadline=None)
    @given(
        exec_cycles=st.integers(1, 2**50),
        mem_access_cycles=st.integers(0, 2**50),
        mem_power_w=st.floats(0, 1e3, allow_nan=False),
        mem_energy_j=st.floats(0, 1e3, allow_nan=False),
        row_hit_rate=st.floats(0, 1),
        per_obj=st.dictionaries(st.integers(0, 2**20),
                                st.integers(0, 2**40), max_size=4),
    )
    def test_property_roundtrip(self, exec_cycles, mem_access_cycles,
                                mem_power_w, mem_energy_j, row_hit_rate,
                                per_obj):
        """to_dict -> json -> from_dict is the identity on stored fields,
        including exact float values and int-keyed per-object maps."""
        core = CoreResult(
            core_id=0, cycles=exec_cycles, total_instructions=123,
            n_demand=7, n_load_misses=5, n_writebacks=1, n_prefetches=0,
            n_episodes=3, mem_access_cycles=mem_access_cycles,
            load_stall_cycles=11, stall_by_obj=dict(per_obj),
            load_misses_by_obj=dict(per_obj), demand_by_obj=dict(per_obj))
        m = RunMetrics(
            system="s", policy="p", workload="w", n_cores=1,
            exec_cycles=exec_cycles, mem_access_cycles=mem_access_cycles,
            mem_power_w=mem_power_w, mem_energy_j=mem_energy_j,
            total_instructions=123, n_requests=7,
            row_hit_rate=row_hit_rate, load_stall_cycles=11,
            n_load_misses=5, latency_p50=1, latency_p95=2, latency_p99=4,
            per_core=(core,))
        clone = RunMetrics.from_dict(json.loads(json.dumps(m.to_dict())))
        assert clone == m
        assert clone.per_core[0].stall_by_obj == per_obj


class TestEngineWiring:
    def test_no_cache_by_default(self):
        assert engine.active_cache() is None
        assert engine.cache_stats() is None

    def test_env_fallback(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = engine.active_cache()
        assert cache is not None and cache.directory == tmp_path

    def test_configure_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        engine.configure(tmp_path / "explicit")
        assert engine.active_cache().directory == tmp_path / "explicit"
        engine.configure(None)  # --no-cache beats the env too
        assert engine.active_cache() is None

    def test_execute_misses_then_hits(self, tmp_path):
        engine.configure(tmp_path)
        cold = engine.execute([SPEC, SPEC2], phase="t")
        warm = engine.execute([SPEC, SPEC2], phase="t")
        assert cold == warm
        stats = engine.cache_stats()
        assert stats["misses"] == 2 and stats["hits"] == 2
        assert stats["hit_ratio"] == 0.5
        assert engine.sweep_seconds()["t"] > 0

    def test_run_cached(self, tmp_path, metrics):
        engine.configure(tmp_path)
        assert engine.run_cached(SPEC) == metrics
        assert engine.run_cached(SPEC) == metrics
        assert engine.cache_stats()["hits"] == 1

    def test_uncached_execute_still_works(self, metrics):
        assert engine.execute([SPEC]) == [metrics]

    def test_parallel_engine_matches_serial(self, monkeypatch, tmp_path):
        specs = [RunSpec("sift", c, p, 6_000) for c, p in
                 (("Homogen-DDR3", "homogen"), ("Homogen-HBM", "homogen"),
                  ("Heter-config1", "heter-app"), ("Heter-config1", "moca"))]
        serial = engine.execute(specs)
        monkeypatch.setenv("REPRO_WORKERS", "2")
        # Exercise the real pool even on a single-CPU machine.
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        engine.configure(tmp_path)  # parallel pass also fills the cache
        parallel = engine.execute(specs)
        assert serial == parallel
        assert engine.cache_stats()["stores"] == len(specs)

    def test_oversubscription_capped_to_cpu_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "64")
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        assert engine._effective_workers(60) == 2
        assert engine._effective_workers(1) == 1  # never more than work


class TestCrossProcessReuse:
    def test_two_cli_processes_share_one_cache(self, tmp_path):
        env = {**os.environ, "PYTHONPATH": "src"}
        cmd = [sys.executable, "-m", "repro", "run", "sift",
               "--system", "Homogen-DDR3", "--policy", "homogen",
               "--accesses", "6000", "--cache-dir", str(tmp_path)]
        first = subprocess.run(cmd, capture_output=True, text=True,
                               env=env, cwd=Path(__file__).parent.parent)
        second = subprocess.run(cmd, capture_output=True, text=True,
                                env=env, cwd=Path(__file__).parent.parent)
        assert first.returncode == 0 and second.returncode == 0
        assert "0 hits, 1 misses" in first.stderr
        assert "1 hits, 0 misses" in second.stderr
        assert first.stdout.splitlines()[:6] == second.stdout.splitlines()[:6]


class TestCampaignEquivalence:
    def test_warm_campaign_reproduces_cold_rows(self, tmp_path, capsys):
        """A repeat campaign must simulate nothing (hit ratio 1.0) and
        write byte-identical figure rows."""
        from repro.experiments import runner
        from repro.experiments.__main__ import main

        cache_dir = tmp_path / "cache"
        cold_dir, warm_dir = tmp_path / "cold", tmp_path / "warm"
        args = ["fig08", "fig09", "--fidelity", "tiny",
                "--cache-dir", str(cache_dir)]
        runner.single_sweep.cache_clear()
        assert main(args + ["--save", str(cold_dir)]) == 0
        # Drop the in-process memoization so the second pass must go
        # back through the engine (and therefore the disk cache).
        runner.single_sweep.cache_clear()
        assert main(args + ["--save", str(warm_dir)]) == 0
        capsys.readouterr()

        cold = json.loads((cold_dir / "manifest.json").read_text())
        warm = json.loads((warm_dir / "manifest.json").read_text())
        assert cold["cache"]["misses"] == 60  # 10 apps x 6 systems
        assert cold["cache"]["stores"] == 60
        assert cold["cache"]["hit_ratio"] == 0.0
        assert warm["cache"]["hits"] == 60
        assert warm["cache"]["misses"] == 0
        assert warm["cache"]["hit_ratio"] == 1.0
        assert "sweep.single" in cold["sweep_seconds"]

        for fig_id in ("fig08", "fig09"):
            a = json.loads((cold_dir / f"{fig_id}.json").read_text())
            b = json.loads((warm_dir / f"{fig_id}.json").read_text())
            assert a["columns"] == b["columns"]
            assert a["rows"] == b["rows"]
        runner.single_sweep.cache_clear()


#: Worker body for the concurrent-eviction stress test below: hammer a
#: shared size-bounded cache with distinct keys so every process evicts
#: entries while its siblings are storing (and vice versa).
EVICT_WORKER = """
import sys
sys.path.insert(0, "src")
from repro.experiments.cache import ResultCache
from repro.sim.spec import RunSpec, run

directory, tag = sys.argv[1], int(sys.argv[2])
metrics = run(RunSpec("sift", "Homogen-DDR3", "homogen", 1_000))
cache = ResultCache(directory, max_entries=4)
for i in range(40):
    spec = RunSpec("sift", "Homogen-DDR3", "homogen",
                   2_000 + tag * 1_000 + i)
    cache.put(spec, metrics)
print(cache.stats.evicted)
"""


class TestConcurrentEviction:
    def test_parallel_processes_evicting_one_directory(self, tmp_path):
        """Several processes store into one bounded cache at once; the
        glob/stat/unlink races inside ``_evict_over`` must all be
        harmless (satellite: tolerate concurrently-evicted entries)."""
        shared = tmp_path / "cache"
        env = {**os.environ, "PYTHONPATH": "src"}
        procs = [subprocess.Popen(
                     [sys.executable, "-c", EVICT_WORKER, str(shared),
                      str(tag)],
                     stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                     text=True, env=env, cwd=Path(__file__).parent.parent)
                 for tag in range(4)]
        outs = [p.communicate(timeout=300) for p in procs]
        assert all(p.returncode == 0 for p in procs), \
            [err for _, err in outs]
        # Every worker actually exercised eviction, nobody crashed.
        assert all(int(out.strip()) > 0 for out, _ in outs)
        # The bound roughly holds (transient overshoot while several
        # puts race is fine; unbounded growth is not).
        survivors = list(shared.glob("*.json"))
        assert 1 <= len(survivors) <= 16
        # Survivors are intact, readable entries.
        for path in survivors:
            doc = json.loads(path.read_text())
            assert doc["version"] == CACHE_VERSION
        # No temp-file debris from the atomic writes.
        assert not list(shared.glob("*.tmp"))
