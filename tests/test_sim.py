"""Tests for system configs, metrics, and the single/multicore runners."""

import pytest

from repro.sim.config import (
    ALL_SYSTEMS,
    CAPACITY_SCALE,
    HETER_CONFIG1,
    HETER_CONFIG2,
    HETER_CONFIG3,
    HOMOGEN_DDR3,
    HOMOGEN_HBM,
    HOMOGEN_LP,
    HOMOGEN_RL,
    GroupSpec,
    SystemConfig,
)
from repro.sim.metrics import CORE_POWER_W, RunMetrics
from repro.sim.single import make_policy
from repro.sim.spec import RunSpec, run
from repro.util.units import MIB

N = 20_000  # short traces for unit-level checks
NM = 12_000


class TestConfigs:
    def test_scale_factor(self):
        assert CAPACITY_SCALE == 8

    def test_homogeneous_geometry(self):
        sys = HOMOGEN_DDR3.build()
        assert len(sys.groups) == 1
        assert sys.groups[0].n_channels == 4
        assert sys.capacity_bytes == 4 * 512 * MIB // 8

    def test_config1_geometry(self):
        """Sec. V-C: 256 MB RLDRAM + 768 MB HBM + 2x512 MB LPDDR2."""
        sys = HETER_CONFIG1.build()
        assert sys.group("lat").capacity_bytes == 256 * MIB // 8
        assert sys.group("bw").capacity_bytes == 768 * MIB // 8
        assert sys.group("pow").capacity_bytes == 1024 * MIB // 8
        assert sys.group("pow").n_channels == 2

    def test_config_totals_match_paper(self):
        assert HETER_CONFIG1.total_paper_mb == 2048
        assert HETER_CONFIG2.total_paper_mb == 2048
        assert HETER_CONFIG3.total_paper_mb == 2048
        assert HOMOGEN_DDR3.total_paper_mb == 2048

    def test_four_controllers_in_configs_1_2(self):
        for cfg in (HETER_CONFIG1, HETER_CONFIG2):
            assert sum(g.n_channels for g in cfg.groups) == 4

    def test_roles(self):
        assert HETER_CONFIG1.roles() == {"lat": 0, "bw": 1, "pow": 2}
        assert HOMOGEN_LP.roles() == {"main": 0}

    def test_fresh_build_each_time(self):
        assert HOMOGEN_RL.build() is not HOMOGEN_RL.build()

    def test_allocator_pools_match_groups(self):
        sys = HETER_CONFIG1.build()
        alloc = HETER_CONFIG1.make_allocator(sys)
        assert set(alloc.pools) == {0, 1, 2}
        assert alloc.pools[0].n_frames == sys.group("lat").capacity_bytes // 4096

    def test_registry(self):
        from repro.sim.config import CAPACITY_POINTS
        # The paper's seven systems plus the capacity-sweep family.
        assert len(ALL_SYSTEMS) == 7 + len(CAPACITY_POINTS)
        assert "Homogen-DDR3" in ALL_SYSTEMS
        for mb in CAPACITY_POINTS:
            cfg = ALL_SYSTEMS[f"Heter-cap{mb}"]
            assert cfg.fast_tier_bytes() == mb * (1 << 20) // 8

    def test_custom_config(self):
        cfg = SystemConfig("x", (GroupSpec("main", "HBM", 2, 256),))
        sys = cfg.build()
        assert sys.groups[0].timing.name == "HBM"


class TestMetricsType:
    def _metrics(self, **kw):
        base = dict(system="s", policy="p", workload="w", n_cores=4,
                    exec_cycles=1_000_000, mem_access_cycles=500_000,
                    mem_power_w=0.5, mem_energy_j=0.001,
                    total_instructions=2_000_000, n_requests=100,
                    row_hit_rate=0.5, load_stall_cycles=1000,
                    n_load_misses=100)
        base.update(kw)
        return RunMetrics(**base)

    def test_memory_edp_is_power_times_access_time(self):
        m = self._metrics()
        assert m.memory_edp == pytest.approx(0.5 * 500_000 * 1e-9)

    def test_system_power_includes_cores(self):
        m = self._metrics()
        assert m.system_power_w == pytest.approx(4 * CORE_POWER_W + 0.5)

    def test_system_edp_energy_times_delay(self):
        m = self._metrics()
        t = m.exec_seconds
        assert m.system_edp == pytest.approx(m.system_power_w * t * t)

    def test_ipc(self):
        assert self._metrics().ipc == pytest.approx(2.0)

    def test_stall_per_load_miss(self):
        assert self._metrics().stall_per_load_miss == pytest.approx(10.0)

    def test_four_core_power_is_21w(self):
        """Paper Sec. V-A: calibrated 21 W total core power."""
        assert self._metrics().core_power_w == pytest.approx(21.0)


class TestRunSingle:
    def test_returns_metrics(self):
        m = run(RunSpec("sift", HOMOGEN_DDR3.name, "homogen", N))
        assert m.n_cores == 1
        assert m.exec_cycles > 0
        assert m.n_requests > 0
        assert m.mem_power_w > 0

    def test_policies_on_hetero(self):
        for policy in ("heter-app", "moca"):
            m = run(RunSpec("gcc", HETER_CONFIG1.name, policy, N))
            assert m.policy == policy

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            run(RunSpec("gcc", HOMOGEN_DDR3.name, "random", N))

    def test_rl_faster_than_lp(self):
        rl = run(RunSpec("mcf", HOMOGEN_RL.name, "homogen", N))
        lp = run(RunSpec("mcf", HOMOGEN_LP.name, "homogen", N))
        assert rl.mem_access_cycles < lp.mem_access_cycles

    def test_deterministic(self):
        a = run(RunSpec("stitch", HOMOGEN_HBM.name, "homogen", N))
        b = run(RunSpec("stitch", HOMOGEN_HBM.name, "homogen", N))
        assert a.exec_cycles == b.exec_cycles
        assert a.mem_access_cycles == b.mem_access_cycles

    def test_make_policy_moca_has_heat(self):
        p = make_policy("moca", ["mcf"], "ref", N, profile_accesses=N)
        assert p.object_types[0]
        assert any(h > 0 for h in p.object_heat[0].values())


class TestRunMulti:
    def test_four_cores(self):
        m = run(RunSpec("1B3N", HOMOGEN_DDR3.name, "homogen", NM))
        assert m.n_cores == 4
        assert len(m.per_core) == 4
        assert all(r.cycles > 0 for r in m.per_core)

    def test_mix_by_name_or_object(self):
        from repro.sim.multi import _run_multi
        from repro.workloads.mixes import mix
        a = run(RunSpec("1B3N", HOMOGEN_DDR3.name, "homogen", NM))
        # The internal driver accepts WorkloadMix objects directly and
        # must resolve a mix *name* to the same thing.
        b = _run_multi(mix("1B3N"), HOMOGEN_DDR3, "homogen",
                       n_accesses=NM)
        assert a.exec_cycles == b.exec_cycles

    def test_contention_slows_shared_system(self):
        solo = run(RunSpec("lbm", HOMOGEN_DDR3.name, "homogen", NM))
        multi = run(RunSpec("4B", HOMOGEN_DDR3.name, "homogen", NM))
        lbm_core = next(r for r in multi.per_core
                        if r.core_id == 1)  # 4B = mser, lbm, tracking, mser
        assert lbm_core.mem_access_cycles > solo.mem_access_cycles

    def test_exec_is_max_core(self):
        m = run(RunSpec("2B2N", HOMOGEN_HBM.name, "homogen", NM))
        assert m.exec_cycles == max(r.cycles for r in m.per_core)

    def test_moca_beats_heter_app_on_3l1b(self):
        het = run(RunSpec("3L1B", HETER_CONFIG1.name, "heter-app", NM))
        moca = run(RunSpec("3L1B", HETER_CONFIG1.name, "moca", NM))
        assert moca.mem_access_cycles < het.mem_access_cycles


class TestFilteredStreamMemoization:
    """The memoized cache-filter pass hands out shared objects.

    Callers across single-, multi-core, and profiling paths receive the
    *same* ``(MissStream, CacheStats)`` instances and must never mutate
    them — see the :func:`repro.sim.single.filtered_stream` docstring.
    """

    def test_same_key_returns_identical_objects(self):
        from repro.sim.single import filtered_stream
        a_stream, a_stats = filtered_stream("stitch", "ref", N)
        b_stream, b_stats = filtered_stream("stitch", "ref", N)
        assert a_stream is b_stream
        assert a_stats is b_stats

    def test_distinct_keys_are_independent(self):
        from repro.sim.single import filtered_stream
        a, _ = filtered_stream("stitch", "ref", N)
        b, _ = filtered_stream("stitch", "ref", N + 1)
        assert a is not b
