"""Tests for figure artefact persistence, diffing, bars, and parallel sweeps."""

import json

import pytest

from repro.experiments.runner import Fidelity, FigureResult, TINY
from repro.experiments.store import (
    diff_figures,
    load_figure,
    save_figure,
    write_manifest,
)


def _fig(x=1.0):
    f = FigureResult("figT", "test figure", ["key", "a", "b"])
    f.add_row("r1", x, 2.0)
    f.add_row("r2", 3.0, 4.0)
    f.notes.append("a note")
    return f


class TestStore:
    def test_save_load_roundtrip(self, tmp_path):
        path = save_figure(_fig(), tmp_path)
        assert path.name == "figT.json"
        restored = load_figure(path)
        assert restored.columns == ["key", "a", "b"]
        assert restored.rows == _fig().rows
        assert restored.notes == ["a note"]

    def test_manifest(self, tmp_path):
        path = write_manifest(tmp_path, TINY, ["figT", "figU"])
        doc = json.loads(path.read_text())
        assert doc["fidelity"]["name"] == "tiny"
        assert doc["figures"] == ["figT", "figU"]
        assert "library_version" in doc

    def test_bad_version(self, tmp_path):
        path = save_figure(_fig(), tmp_path)
        doc = json.loads(path.read_text())
        doc["version"] = 42
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match=str(path)):
            load_figure(path)

    def test_from_dict_rejects_row_length_mismatch(self):
        doc = _fig().to_dict()
        doc["rows"][1] = ["r2", 3.0]  # one cell short of `columns`
        with pytest.raises(ValueError, match="figT.*2 cells, expected 3"):
            FigureResult.from_dict(doc)

    def test_load_figure_names_file_on_row_mismatch(self, tmp_path):
        """A hand-edited artefact whose row no longer matches its columns
        must fail with the offending *file* in the message."""
        path = save_figure(_fig(), tmp_path)
        doc = json.loads(path.read_text())
        doc["rows"][0] = ["r1", 1.0]
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError,
                           match=rf"{path}.*invalid figure artefact"):
            load_figure(path)


class TestDiff:
    def test_identical_is_empty(self):
        assert diff_figures(_fig(), _fig()) == []

    def test_within_tolerance_is_empty(self):
        assert diff_figures(_fig(1.0), _fig(1.01)) == []

    def test_beyond_tolerance_reports_cell(self):
        diffs = diff_figures(_fig(1.0), _fig(1.5))
        assert len(diffs) == 1
        assert diffs[0].startswith("r1/a")

    def test_column_mismatch(self):
        other = FigureResult("figT", "t", ["key", "z"])
        assert "column mismatch" in diff_figures(_fig(), other)[0]

    def test_row_mismatch(self):
        other = FigureResult("figT", "t", ["key", "a", "b"])
        other.add_row("zzz", 1.0, 2.0)
        assert "row mismatch" in diff_figures(_fig(), other)[0]


class TestBars:
    def test_bars_contain_all_rows_and_columns(self):
        text = _fig().render_bars(width=10)
        assert "r1:" in text and "r2:" in text
        assert "#" in text
        assert "a note" in text

    def test_bars_scale_to_peak(self):
        text = _fig().render_bars(width=10)
        # the peak value (4.0) gets the full-width bar
        assert "#" * 10 in text

    def test_bars_fall_back_without_numeric_columns(self):
        f = FigureResult("figS", "strings", ["key", "val"])
        f.add_row("r", "hello")
        assert "hello" in f.render_bars()


class TestParallelSweep:
    def test_worker_env_parsing(self, monkeypatch):
        from repro.experiments import runner
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert runner.sweep_workers() == 4
        monkeypatch.setenv("REPRO_WORKERS", "bogus")
        assert runner.sweep_workers() == 1
        monkeypatch.delenv("REPRO_WORKERS")
        assert runner.sweep_workers() == 1

    def test_parallel_matches_serial(self, monkeypatch):
        """Workers must not change any number (determinism across
        process boundaries)."""
        import os
        from repro.experiments import runner
        micro = Fidelity("micro-par", 6_000, 4_000)
        serial = runner.single_sweep(micro)
        runner.single_sweep.cache_clear()
        monkeypatch.setenv("REPRO_WORKERS", "2")
        # Exercise the real pool even on a single-CPU machine (the
        # engine otherwise caps fan-out at the CPU count).
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        parallel = runner.single_sweep(micro)
        runner.single_sweep.cache_clear()
        assert serial.keys() == parallel.keys()
        for k in serial:
            assert serial[k].exec_cycles == parallel[k].exec_cycles
            assert serial[k].mem_access_cycles == parallel[k].mem_access_cycles


class TestMarkdownAndReport:
    def test_markdown_table(self):
        md = _fig().render_markdown()
        assert md.startswith("### figT")
        assert "| key | a | b |" in md
        assert "| r1 | 1.000 | 2.000 |" in md
        assert "*a note*" in md

    def test_build_report(self, tmp_path):
        from repro.experiments.store import build_report
        save_figure(_fig(), tmp_path)
        write_manifest(tmp_path, TINY, ["figT"])
        report = build_report(tmp_path, title="My campaign")
        assert report.startswith("# My campaign")
        assert "### figT" in report
        assert "fidelity" in report or "tiny" in report

    def test_build_report_without_manifest(self, tmp_path):
        from repro.experiments.store import build_report
        save_figure(_fig(), tmp_path)
        assert "### figT" in build_report(tmp_path)


class TestCliSaveAndBars:
    def test_save_writes_artefacts(self, tmp_path, capsys):
        from repro.experiments.__main__ import main
        assert main(["table2", "--save", str(tmp_path)]) == 0
        assert (tmp_path / "table2.json").exists()
        assert (tmp_path / "manifest.json").exists()

    def test_bars_flag(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["table1", "--bars"]) == 0
        # table1 has a text value column; bars fall back to the table.
        assert "ROB entries" in capsys.readouterr().out
