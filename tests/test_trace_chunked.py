"""Chunked traces: byte-identity with the monolithic path, store
robustness, windowed-filter parity, and the RunSpec knob.

The contract under test everywhere: chunking is a *layout* choice, not
a semantic one.  Shard content, filter output, and run metrics must be
byte-identical to the monolithic pipeline for every shard size — which
is also why the persistent miss-stream store is shared between the two
pipelines.
"""

import json

import numpy as np
import pytest

from repro.cpu.hierarchy import CacheHierarchy
from repro.sim import run, stream_store
from repro.sim.spec import RunSpec
import repro.sim.single as single
from repro.trace import chunked
from repro.trace.builder import TraceBuilder
from repro.trace.io import COLUMN_DTYPES, import_trace, save_trace
from repro.util.rng import stream


@pytest.fixture
def trace_store(tmp_path):
    """Isolate the chunked store (and disable the stream store)."""
    store = chunked.configure(tmp_path / "traces")
    stream_store.configure(None)
    single.filtered_stream_chunked.cache_clear()
    yield store
    chunked.reset()
    stream_store.reset()
    single.filtered_stream_chunked.cache_clear()


def _assert_traces_equal(a, b):
    np.testing.assert_array_equal(a.inst, b.inst)
    np.testing.assert_array_equal(a.vaddr, b.vaddr)
    np.testing.assert_array_equal(a.is_write, b.is_write)
    np.testing.assert_array_equal(a.obj_id, b.obj_id)
    np.testing.assert_array_equal(a.dep, b.dep)
    assert a.total_instructions == b.total_instructions


def _assert_filter_equal(res_a, res_b):
    s_a, c_a = res_a
    s_b, c_b = res_b
    for name in ("inst", "vline", "obj_id", "dep", "kind"):
        x, y = getattr(s_a, name), getattr(s_b, name)
        assert x.dtype == y.dtype, name
        np.testing.assert_array_equal(x, y, err_msg=name)
    assert (c_a.total_instructions, c_a.l1_hits, c_a.l1_misses,
            c_a.l2_hits, c_a.l2_misses, c_a.n_writebacks) == \
           (c_b.total_instructions, c_b.l1_hits, c_b.l1_misses,
            c_b.l2_hits, c_b.l2_misses, c_b.n_writebacks)
    assert list(c_a.per_object) == list(c_b.per_object)
    assert c_a.per_object == c_b.per_object


N = 12_000


class TestChunkedGeneration:
    @pytest.mark.parametrize("chunk", [7, 997, N, N + 5000])
    def test_byte_identical_across_shard_sizes(self, tiny_behaviors,
                                               tmp_path, chunk):
        mono_rng = stream("chunktest", 0)
        mono = TraceBuilder(tiny_behaviors).build(N, mono_rng)
        ct_rng = stream("chunktest", 0)
        ct = chunked.build_chunked(
            TraceBuilder(tiny_behaviors), N, ct_rng,
            tmp_path / f"entry-{chunk}", chunk_accesses=chunk)
        _assert_traces_equal(ct.materialize(), mono)
        assert sum(ct.shard_rows) == N
        assert all(r == chunk for r in ct.shard_rows[:-1])
        # Generation must drain the engine: identical final RNG state.
        assert ct_rng.bit_generator.state == mono_rng.bit_generator.state

    def test_engines_agree(self, tiny_behaviors, tmp_path):
        out = []
        for fast in (True, False):
            ct = chunked.build_chunked(
                TraceBuilder(tiny_behaviors), N, stream("chunktest", 1),
                tmp_path / f"e-{fast}", chunk_accesses=5000,
                fast_path=fast)
            out.append(ct.materialize())
        _assert_traces_equal(out[0], out[1])

    def test_layout_survives_reopen(self, tiny_behaviors, trace_store):
        key = chunked.trace_key("mcf", "ref", N, 5000)
        built = trace_store.build(key, TraceBuilder(tiny_behaviors), N,
                                  stream("chunktest", 2))
        reopened = trace_store.get(key)
        assert reopened is not None
        a, b = built.layout, reopened.layout
        assert [(o.name, o.vbase, o.size_bytes, o.site)
                for o in a.objects] == \
               [(o.name, o.vbase, o.size_bytes, o.site)
                for o in b.objects]
        vaddr = built.materialize().vaddr
        np.testing.assert_array_equal(a.resolve(vaddr), b.resolve(vaddr))

    def test_rejects_nonpositive_chunk(self, tiny_behaviors, tmp_path):
        with pytest.raises(ValueError, match="chunk_accesses"):
            chunked.build_chunked(
                TraceBuilder(tiny_behaviors), 100, stream("chunktest", 3),
                tmp_path / "bad", chunk_accesses=0)


class TestFilterChunkedParity:
    # warm_until = 0.2 * N = 2400: chunk=2400 puts the warmup boundary
    # exactly on a shard edge, 1000/1800 put it mid-shard (after/inside
    # whole warm shards), N+1 degenerates to one window.
    @pytest.mark.parametrize("chunk", [1000, 1800, 2400, N + 1])
    @pytest.mark.parametrize("fast", [True, False])
    def test_matches_monolithic(self, tiny_behaviors, tmp_path, chunk,
                                fast):
        mono = TraceBuilder(tiny_behaviors).build(N, stream("chunktest", 4))
        ct = chunked.chunk_trace(mono, tmp_path / f"e-{chunk}-{fast}",
                                 chunk_accesses=chunk)
        h_mono, h_chunk = CacheHierarchy(), CacheHierarchy()
        res_mono = h_mono.filter_trace(mono, fast_path=fast)
        res_chunk = h_chunk.filter_chunked(ct, fast_path=fast)
        _assert_filter_equal(res_chunk, res_mono)
        assert h_chunk.last_engine == ("kernel" if fast else "reference")

    def test_invalid_warmup_frac(self, tiny_behaviors, tmp_path):
        mono = TraceBuilder(tiny_behaviors).build(2000, stream("ct", 5))
        ct = chunked.chunk_trace(mono, tmp_path / "e", chunk_accesses=500)
        with pytest.raises(ValueError):
            CacheHierarchy().filter_chunked(ct, warmup_frac=1.5)


class TestTraceStore:
    def _build(self, store, behaviors, n=N, chunk=4000, salt=6):
        key = chunked.trace_key("mcf", "ref", n, chunk)
        got = store.get(key)
        if got is not None:
            return key, got
        return key, store.build(key, TraceBuilder(behaviors), n,
                                stream("chunktest", salt))

    def test_round_trip(self, tiny_behaviors, trace_store):
        key, built = self._build(trace_store, tiny_behaviors)
        again = trace_store.get(key)
        _assert_traces_equal(again.materialize(), built.materialize())
        assert len(trace_store) == 1

    def test_miss_on_absent_key(self, trace_store):
        assert trace_store.get(chunked.trace_key("gcc", "ref", 5, 5)) is None

    def test_corrupt_shard_deletes_entry(self, tiny_behaviors,
                                         trace_store):
        key, built = self._build(trace_store, tiny_behaviors)
        built.shard_path(1).write_bytes(b"not an npz")
        reopened = trace_store.get(key)
        with pytest.raises(chunked.CorruptTraceError):
            list(reopened.windows())
        assert not reopened.directory.exists()
        assert trace_store.get(key) is None  # reads as a miss → rebuild

    def test_version_stale_entry_dropped(self, tiny_behaviors,
                                         trace_store):
        key, built = self._build(trace_store, tiny_behaviors)
        mpath = built.directory / chunked.MANIFEST_NAME
        doc = json.loads(mpath.read_text())
        doc["version"] = chunked.TRACE_STORE_VERSION + 1
        mpath.write_text(json.dumps(doc))
        assert trace_store.get(key) is None
        assert not built.directory.exists()

    def test_garbled_manifest_dropped(self, tiny_behaviors, trace_store):
        key, built = self._build(trace_store, tiny_behaviors)
        (built.directory / chunked.MANIFEST_NAME).write_text("{oops")
        assert trace_store.get(key) is None
        assert not built.directory.exists()

    def _downgrade_to_v1(self, entry):
        """Rewrite a v2 entry into the legacy npz-shard layout."""
        for i in range(entry.n_shards):
            cols = {name: np.load(entry.column_path(i, name))
                    for name in COLUMN_DTYPES}
            np.savez_compressed(
                entry.directory / f"shard-{i:05d}.npz", **cols)
            for name in COLUMN_DTYPES:
                entry.column_path(i, name).unlink()
        mpath = entry.directory / chunked.MANIFEST_NAME
        doc = json.loads(mpath.read_text())
        doc["version"] = 1
        doc.pop("shard_format", None)
        mpath.write_text(json.dumps(doc))

    def test_legacy_v1_entry_served_in_place(self, tiny_behaviors,
                                             trace_store):
        key, built = self._build(trace_store, tiny_behaviors)
        want = built.materialize()
        self._downgrade_to_v1(built)

        legacy = trace_store.get(key)
        assert legacy is not None
        assert legacy.shard_format == "npz"
        _assert_traces_equal(legacy.materialize(), want)
        # Served in place: no rewrite-on-read (resharding a large entry
        # would defeat the bounded-RSS point), manifest still v1.
        doc = json.loads(
            (built.directory / chunked.MANIFEST_NAME).read_text())
        assert doc["version"] == 1
        assert not list(built.directory.glob("*.npy"))

    def test_filtered_stream_chunked_retries_corruption(self, trace_store):
        """The runner-facing wrapper recovers from a corrupt entry by
        rebuilding — one retry, no caller-visible error."""
        first = single.filtered_stream_chunked("mcf", "ref", N, 4000)
        entry = trace_store.get(chunked.trace_key("mcf", "ref", N, 4000))
        entry.shard_path(0).write_bytes(b"garbage")
        single.filtered_stream_chunked.cache_clear()
        again = single.filtered_stream_chunked("mcf", "ref", N, 4000)
        _assert_filter_equal(again[:2], first[:2])
        prov = single.filter_provenance("mcf", "ref", N)
        assert prov == {"engine": "kernel", "from_store": False}


class TestRunSpecKnob:
    def test_canonical_key_only_when_set(self):
        plain = RunSpec("mcf", "Heter-config1", "moca", N)
        knobbed = RunSpec("mcf", "Heter-config1", "moca", N,
                          trace_chunk_accesses=4000)
        c_plain, c_knob = plain.canonical(), knobbed.canonical()
        assert "trace_chunk_accesses" not in c_plain
        assert c_knob.pop("trace_chunk_accesses") == 4000
        assert c_knob == c_plain

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            RunSpec("mcf", "Heter-config1", "moca", N,
                    trace_chunk_accesses=0)
        with pytest.raises(ValueError, match="single-core"):
            RunSpec("2L1B1N", "Heter-config1", "moca", N,
                    trace_chunk_accesses=4000)
        with pytest.raises(ValueError, match="migration|online"):
            RunSpec("mcf", "Heter-config1", "moca", N,
                    trace_chunk_accesses=4000, migration=True)

    def test_run_equals_unchunked(self, trace_store):
        base = RunSpec("mcf", "Heter-config1", "moca", N)
        m_plain = run(base)
        m_chunk = run(RunSpec("mcf", "Heter-config1", "moca", N,
                              trace_chunk_accesses=5000))
        d_plain = {k: v for k, v in m_plain.to_dict().items()
                   if k != "meta"}
        d_chunk = {k: v for k, v in m_chunk.to_dict().items()
                   if k != "meta"}
        assert d_chunk == d_plain
        assert m_chunk.meta["trace_chunk_accesses"] == 5000
        assert "trace_chunk_accesses" not in m_plain.meta


class TestImportPath:
    def test_save_import_round_trip(self, tiny_behaviors, tmp_path):
        mono = TraceBuilder(tiny_behaviors).build(8000, stream("ct", 7))
        path = tmp_path / "captured.trace.npz"
        save_trace(mono, path)
        ct = import_trace(path, tmp_path / "imported", chunk_accesses=3000)
        assert ct.n_shards == 3
        _assert_traces_equal(ct.materialize(), mono)
        np.testing.assert_array_equal(
            ct.layout.resolve(mono.vaddr), mono.obj_id)
