"""Kernel ↔ reference parity for the cache-filter front end.

The vectorized filter kernel (``repro.cpu.filter_kernel``) must be
*byte-identical* to the retained reference loop in
``CacheHierarchy._filter_trace_reference`` — same ``MissStream`` arrays
(values and dtypes), same ``CacheStats`` including per-object tallies
and their first-touch ordering, same final tag-store state.  This suite
pins that over randomized traces and geometries, plus the engineered
corners (both kernel dispatch modes, the prefetcher fallback, the
``REPRO_FAST_PATH`` kill switch, and ``filtered_stream``'s
shared-identity contract).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import filter_kernel
from repro.cpu.cache import SetAssocCache
from repro.cpu.hierarchy import CacheHierarchy
from repro.cpu.prefetch import StridePrefetcher
from repro.trace.events import AccessTrace, VirtualLayout
from repro.util.rng import stream


def _make_trace(n, seed, *, n_objects=3, obj_kib=96, write_frac=0.3,
                dep_frac=0.1, hot=False):
    """A synthetic AccessTrace over a few heap objects (no TraceBuilder:
    parity needs adversarial address patterns, not realistic ones)."""
    layout = VirtualLayout()
    for i in range(n_objects):
        layout.place(f"obj{i}", obj_kib * 1024, site=i + 1)
    rng = stream("tests", "filter_parity", seed)
    which = rng.integers(0, n_objects, size=n)
    if hot:
        # Hammer a single line's worth of offsets: maximal per-set skew.
        offs = rng.integers(0, 64, size=n)
    else:
        offs = rng.integers(0, obj_kib * 1024, size=n)
    vaddr = np.empty(n, dtype=np.int64)
    for i in range(n_objects):
        m = which == i
        vaddr[m] = layout.objects[i].vbase + offs[m]
    inst = np.cumsum(rng.integers(1, 12, size=n)).astype(np.int64)
    return AccessTrace(
        inst=inst,
        vaddr=vaddr,
        is_write=rng.random(n) < write_frac,
        obj_id=layout.resolve(vaddr),
        dep=rng.random(n) < dep_frac,
        layout=layout,
        total_instructions=int(inst[-1]) if n else 0,
    )


def _assert_identical(res_kernel, res_reference):
    s_k, c_k = res_kernel
    s_r, c_r = res_reference
    for name in ("inst", "vline", "obj_id", "dep", "kind"):
        a, b = getattr(s_k, name), getattr(s_r, name)
        assert a.dtype == b.dtype, name
        assert np.array_equal(a, b), name
    assert s_k.total_instructions == s_r.total_instructions
    assert c_k == c_r
    # dataclass == ignores dict ordering; first-touch order is part of
    # the contract (MOCA's profiling tables iterate it).
    assert list(c_k.per_object) == list(c_r.per_object)


def _assert_same_state(h_a, h_b):
    for lvl_a, lvl_b in ((h_a.l1, h_b.l1), (h_a.l2, h_b.l2)):
        addr_a, dirty_a = lvl_a.resident_arrays()
        addr_b, dirty_b = lvl_b.resident_arrays()
        assert np.array_equal(addr_a, addr_b)
        assert np.array_equal(dirty_a, dirty_b)
        assert (lvl_a.n_hits, lvl_a.n_misses) == (lvl_b.n_hits,
                                                  lvl_b.n_misses)


GEOMETRIES = [
    # (l1_size, l1_assoc, l2_size, l2_assoc, line_bytes) — tiny caches so
    # a few hundred accesses exercise conflict and capacity behaviour.
    (4 * 1024, 1, 16 * 1024, 2, 64),
    (2 * 1024, 2, 8 * 1024, 16, 32),
    (8 * 1024, 16, 32 * 1024, 16, 128),
    (4 * 1024, 2, 16 * 1024, 1, 64),
]


class TestRandomizedParity:
    @given(
        n=st.integers(min_value=1, max_value=500),
        seed=st.integers(min_value=0, max_value=10_000),
        geom=st.sampled_from(GEOMETRIES),
        write_frac=st.sampled_from([0.0, 0.3, 1.0]),
        warmup=st.sampled_from([0.0, 0.1, 0.35]),
    )
    @settings(max_examples=60, deadline=None)
    def test_kernel_matches_reference(self, n, seed, geom, write_frac,
                                      warmup):
        l1s, l1a, l2s, l2a, lb = geom
        trace = _make_trace(n, seed, write_frac=write_frac)
        h_k = CacheHierarchy(l1s, l1a, l2s, l2a, lb)
        h_r = CacheHierarchy(l1s, l1a, l2s, l2a, lb)
        res_k = h_k.filter_trace(trace, warmup_frac=warmup, fast_path=True)
        res_r = h_r.filter_trace(trace, warmup_frac=warmup, fast_path=False)
        assert h_k.last_engine == "kernel"
        assert h_r.last_engine == "reference"
        _assert_identical(res_k, res_r)
        _assert_same_state(h_k, h_r)

    @given(n=st.integers(min_value=1, max_value=400),
           seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_skewed_traces_match(self, n, seed):
        """Single-set hammering drives the kernel's scalar dispatch."""
        trace = _make_trace(n, seed, hot=True)
        h_k, h_r = CacheHierarchy(), CacheHierarchy()
        res_k = h_k.filter_trace(trace, fast_path=True)
        res_r = h_r.filter_trace(trace, fast_path=False)
        _assert_identical(res_k, res_r)
        _assert_same_state(h_k, h_r)

    def test_warm_hierarchy_continues_exactly(self):
        """Filtering is stateful across calls; the kernel must seed its
        matrices from the existing tag stores, not from empty caches."""
        t1 = _make_trace(300, 1)
        t2 = _make_trace(300, 2)
        h_k, h_r = CacheHierarchy(), CacheHierarchy()
        h_k.filter_trace(t1, fast_path=True)
        h_r.filter_trace(t1, fast_path=False)
        res_k = h_k.filter_trace(t2, warmup_frac=0.0, fast_path=True)
        res_r = h_r.filter_trace(t2, warmup_frac=0.0, fast_path=False)
        _assert_identical(res_k, res_r)
        _assert_same_state(h_k, h_r)


class TestKernelModes:
    def test_rounds_and_scalar_agree(self):
        trace = _make_trace(400, 7)
        c1 = SetAssocCache(4 * 1024, 2)
        c2 = SetAssocCache(4 * 1024, 2)
        line = trace.vaddr >> c1._line_shift
        wr = trace.is_write
        r1 = filter_kernel.simulate_lru(c1, line, wr, mode="rounds")
        r2 = filter_kernel.simulate_lru(c2, line, wr, mode="scalar")
        assert np.array_equal(r1.hit, r2.hit)
        assert np.array_equal(r1.victim_mask, r2.victim_mask)
        assert np.array_equal(r1.victim_line[r1.victim_mask],
                              r2.victim_line[r2.victim_mask])
        assert np.array_equal(r1.victim_dirty[r1.victim_mask],
                              r2.victim_dirty[r2.victim_mask])

    def test_unknown_mode_rejected(self):
        c = SetAssocCache(4 * 1024, 2)
        with pytest.raises(ValueError):
            filter_kernel.simulate_lru(c, np.zeros(1, dtype=np.int64),
                                       np.zeros(1, dtype=bool),
                                       mode="bogus")

    def test_empty_input(self):
        c = SetAssocCache(4 * 1024, 2)
        r = filter_kernel.simulate_lru(c, np.zeros(0, dtype=np.int64),
                                       np.zeros(0, dtype=bool))
        assert len(r.hit) == 0 and len(r.victim_mask) == 0


class TestEngineSelection:
    def test_prefetcher_pins_reference_fallback(self):
        """Runahead fills break per-set batching: a prefetcher-equipped
        hierarchy must use the reference loop even when asked fast."""
        trace = _make_trace(400, 11)
        h_pf = CacheHierarchy(prefetcher=StridePrefetcher())
        res_pf = h_pf.filter_trace(trace, fast_path=True)
        assert h_pf.last_engine == "reference"
        h_ref = CacheHierarchy(prefetcher=StridePrefetcher())
        res_ref = h_ref.filter_trace(trace, fast_path=False)
        _assert_identical(res_pf, res_ref)

    def test_env_kill_switch(self, monkeypatch):
        trace = _make_trace(100, 13)
        monkeypatch.setenv("REPRO_FAST_PATH", "0")
        h = CacheHierarchy()
        h.filter_trace(trace)
        assert h.last_engine == "reference"
        monkeypatch.delenv("REPRO_FAST_PATH")
        h2 = CacheHierarchy()
        h2.filter_trace(trace)
        assert h2.last_engine == "kernel"

    def test_explicit_flag_overrides_env(self, monkeypatch):
        trace = _make_trace(100, 17)
        monkeypatch.setenv("REPRO_FAST_PATH", "0")
        h = CacheHierarchy()
        h.filter_trace(trace, fast_path=True)
        assert h.last_engine == "kernel"


class TestFilteredStreamContract:
    def test_shared_identity_preserved(self):
        """Same key → the very same objects, kernel era included."""
        from repro.sim.single import filter_provenance, filtered_stream
        a_stream, a_stats = filtered_stream("stitch", "ref", 4000)
        b_stream, b_stats = filtered_stream("stitch", "ref", 4000)
        assert a_stream is b_stream and a_stats is b_stats
        prov = filter_provenance("stitch", "ref", 4000)
        assert prov is not None and prov["engine"] in ("kernel",
                                                       "reference",
                                                       "store")

    def test_engines_produce_identical_streams(self):
        from repro.sim.single import filtered_stream
        s_k, c_k = filtered_stream("stitch", "ref", 4001, True)
        s_r, c_r = filtered_stream("stitch", "ref", 4001, False)
        assert s_k is not s_r  # distinct memo entries...
        _assert_identical((s_k, c_k), (s_r, c_r))  # ...identical bytes
