"""Tests for the device probes + the Table II character each model must keep.

These are the regression anchors for the whole memory stack: every
paper-level result depends on RLDRAM being the latency leader, HBM the
bandwidth leader, and LPDDR2 the laggard on both.
"""

import pytest

from repro.memdev.presets import DDR3, HBM, LPDDR2, RLDRAM3
from repro.memdev.probe import (
    characterize,
    idle_latencies,
    loaded_random_latency,
    random_bandwidth,
    stream_bandwidth,
)

DEVICES = (DDR3, HBM, RLDRAM3, LPDDR2)


@pytest.fixture(scope="module")
def characters():
    return {d.name: characterize(d) for d in DEVICES}


class TestIdleLatencies:
    def test_ordering_hit_miss_conflict(self):
        for dev in DEVICES:
            hit, miss, conflict = idle_latencies(dev)
            assert hit < miss <= conflict, dev.name

    def test_rldram_latency_leader(self, characters):
        rl = characters["RLDRAM3"]
        for name, c in characters.items():
            if name != "RLDRAM3":
                assert rl.idle_conflict_ns < c.idle_conflict_ns
                assert rl.loaded_random_ns < c.loaded_random_ns

    def test_rldram_conflict_around_trc(self):
        _, _, conflict = idle_latencies(RLDRAM3)
        assert conflict <= RLDRAM3.tRC_ns + RLDRAM3.transfer_ns(64) + 3

    def test_ddr3_conflict_matches_datasheet_math(self):
        _, _, conflict = idle_latencies(DDR3)
        expected = (DDR3.tRP_ns + DDR3.tRCD_ns + DDR3.tCL_ns
                    + DDR3.transfer_ns(64))
        assert conflict == pytest.approx(expected, abs=4)

    def test_lpddr_slowest_loaded(self, characters):
        lp = characters["LPDDR2"]
        for name, c in characters.items():
            if name != "LPDDR2":
                assert lp.loaded_random_ns > c.loaded_random_ns


class TestBandwidth:
    def test_hbm_stream_leader(self, characters):
        hbm = characters["HBM"]
        for name, c in characters.items():
            if name != "HBM":
                assert hbm.stream_gbps > c.stream_gbps

    def test_lpddr_stream_laggard(self, characters):
        lp = characters["LPDDR2"]
        for name, c in characters.items():
            if name != "LPDDR2":
                assert lp.stream_gbps < c.stream_gbps

    def test_stream_below_peak(self):
        for dev in DEVICES:
            measured = stream_bandwidth(dev)
            assert measured <= dev.peak_bandwidth_gbps() * 1.01, dev.name

    def test_stream_beats_random(self):
        """Row-buffer locality must pay off on every technology with a
        meaningful row buffer (RLDRAM's 128 B window barely counts)."""
        for dev in (DDR3, HBM, LPDDR2):
            assert stream_bandwidth(dev) > random_bandwidth(dev), dev.name

    def test_deeper_window_helps_random(self):
        shallow = random_bandwidth(DDR3, window=2, seed_key="w")
        deep = random_bandwidth(DDR3, window=32, seed_key="w")
        assert deep > shallow


class TestConstraintEffects:
    def test_tfaw_limits_activate_rate(self):
        """DDR3 with tFAW disabled must stream random activates faster."""
        import dataclasses
        no_faw = dataclasses.replace(DDR3, tFAW_ns=0.0)
        with_faw = random_bandwidth(DDR3, window=32, seed_key="faw")
        without = random_bandwidth(no_faw, window=32, seed_key="faw")
        assert without >= with_faw

    def test_turnaround_penalizes_rw_mix(self):
        from repro.memdev.module import MemoryModule
        import dataclasses
        from repro.util.units import MIB

        def run(dev):
            m = MemoryModule(dev, 16 * MIB)
            t = 0
            for i in range(200):
                res = m.access(i * 64, t, is_write=(i % 2 == 0))
                t = res.done
            return t

        slow = run(DDR3)
        fast = run(dataclasses.replace(DDR3, turnaround_ns=0.0))
        assert slow > fast

    def test_character_dataclass_fields(self, characters):
        c = characters["DDR3"]
        assert c.name == "DDR3"
        assert c.stream_gbps > 0 and c.random_gbps > 0
