"""Campaign telemetry: merge laws, capture, dashboard, bench, CLI.

Three layers of coverage:

* **Algebra** (hypothesis) — ``LogHistogram`` / ``SpanStats`` /
  ``CampaignTelemetry`` merges are associative and fold-order
  independent, percentile estimates sit within one log2 bin of the
  truth, and ``to_dict``/``from_dict`` round-trips are lossless (the
  manifest's ``telemetry`` block is exactly reconstructible).
* **Capture** — ``begin_unit``/``end_unit`` take a registry *delta*,
  restore a disabled registry (the PR 1 disabled-by-default contract),
  and ship warnings raised by quieted workers back for a single
  parent-side reprint.
* **Acceptance** — a real ``fig08 --fidelity tiny`` campaign through the
  CLI ``main()``: the manifest telemetry block is consistent with the
  run (unit count, access totals, summed wall time, worker map), the
  ``telemetry.jsonl`` / ``trace.json`` artefacts are well-formed, a
  cache-warm rerun accounts every unit as cached, and figure rows are
  byte-identical with telemetry disabled.
"""

from __future__ import annotations

import json
import math
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import engine
from repro.experiments import runner as _runner
from repro.experiments.__main__ import main as exp_main
from repro.obs import bench
from repro.obs import telemetry as obstel
from repro.obs.dashboard import HEARTBEAT_NAME, Dashboard
from repro.obs.progress import supports_repaint
from repro.obs.registry import ENV_QUIET, OBS, Registry
from repro.obs.telemetry import (
    CampaignTelemetry,
    LogHistogram,
    SpanStats,
    UnitTelemetry,
)
from repro.sim.spec import RunSpec
from repro.workloads.spec import APPS

# Env vars that would change campaign behaviour under test.
_CAMPAIGN_ENV = ("REPRO_WORKERS", "REPRO_OVERSUBSCRIBE", "REPRO_CACHE_DIR",
                 "REPRO_UNIT_TIMEOUT", "REPRO_MAX_ATTEMPTS", "REPRO_CHAOS_DIR",
                 "REPRO_FAST_PATH", "REPRO_TELEMETRY", "REPRO_PROFILE",
                 "REPRO_BENCH_HISTORY", ENV_QUIET)


@pytest.fixture
def clean_env(monkeypatch):
    for var in _CAMPAIGN_ENV:
        monkeypatch.delenv(var, raising=False)


# ---- hypothesis strategies --------------------------------------------------

values = st.integers(min_value=0, max_value=1 << 40)
value_lists = st.lists(values, max_size=30)

span_stats = st.builds(
    lambda vals: _stats_from(vals), st.lists(values, max_size=10))


def _stats_from(vals: list[int]) -> SpanStats:
    s = SpanStats()
    for v in vals:
        s.record(v)
    return s


unit_telemetries = st.builds(
    UnitTelemetry,
    pid=st.integers(1, 4),
    label=st.sampled_from(["a", "b", "c"]),
    wall_ns=st.integers(0, 10**9),
    utime_us=st.integers(0, 10**6),
    stime_us=st.integers(0, 10**6),
    peak_rss_kb=st.integers(0, 10**6),
    gc_collections=st.integers(0, 50),
    accesses=st.integers(0, 10**6),
    filter_accesses=st.integers(0, 10**6),
    engine=st.sampled_from([None, "kernel", "reference"]),
    filter_sources=st.dictionaries(
        st.sampled_from(["kernel", "reference", "store", "memo"]),
        st.integers(1, 5), max_size=3),
    counters=st.dictionaries(st.sampled_from(["x", "y", "z"]),
                             st.integers(1, 100), max_size=3),
    spans=st.dictionaries(st.sampled_from(["core_replay", "cache_filter"]),
                          span_stats, max_size=2),
    warnings=st.dictionaries(st.sampled_from(["k1", "k2"]),
                             st.sampled_from(["msg a", "msg b"]), max_size=2),
)


def _fold(units: list[UnitTelemetry]) -> CampaignTelemetry:
    ct = CampaignTelemetry()
    for ut in units:
        ct.add_unit(ut)
    return ct


# ---- LogHistogram -----------------------------------------------------------


class TestLogHistogram:
    def test_bins_and_count(self):
        h = LogHistogram()
        for v in (0, 1, 2, 3, 1000):
            h.record(v)
        assert h.n == 5
        assert sum(h.bins.values()) == 5

    def test_empty_percentile_is_zero(self):
        assert LogHistogram().percentile(0.5) == 0

    @given(value_lists.filter(bool), st.sampled_from([0.5, 0.95, 0.99]))
    @settings(max_examples=80)
    def test_percentile_within_one_bin(self, vals, q):
        """Estimate >= true quantile and <= 2x (one log2 bin width)."""
        h = _hist_from(vals)
        est = h.percentile(q)
        ordered = sorted(vals)
        true = ordered[max(1, math.ceil(q * len(vals))) - 1]
        assert est >= true
        assert est <= max(1, 2 * true)

    @given(value_lists, value_lists, value_lists)
    @settings(max_examples=60)
    def test_merge_associative(self, a, b, c):
        ha, hb, hc = _hist_from(a), _hist_from(b), _hist_from(c)
        assert ha.merge(hb).merge(hc) == ha.merge(hb.merge(hc))

    @given(value_lists, st.randoms(use_true_random=False))
    @settings(max_examples=60)
    def test_fold_order_independent(self, vals, rnd):
        shuffled = list(vals)
        rnd.shuffle(shuffled)
        assert _hist_from(vals) == _hist_from(shuffled)

    @given(value_lists)
    @settings(max_examples=60)
    def test_round_trip(self, vals):
        h = _hist_from(vals)
        assert LogHistogram.from_dict(
            json.loads(json.dumps(h.to_dict()))) == h

    def test_merge_mutates_neither(self):
        a, b = _hist_from([1, 2]), _hist_from([3])
        a.merge(b)
        assert a.n == 2 and b.n == 1


def _hist_from(vals: list[int]) -> LogHistogram:
    h = LogHistogram()
    for v in vals:
        h.record(v)
    return h


# ---- CampaignTelemetry algebra ---------------------------------------------


class TestCampaignMerge:
    @given(st.lists(unit_telemetries, max_size=6),
           st.lists(unit_telemetries, max_size=6),
           st.lists(unit_telemetries, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_merge_associative(self, a, b, c):
        ca, cb, cc = _fold(a), _fold(b), _fold(c)
        assert ca.merge(cb).merge(cc) == ca.merge(cb.merge(cc))

    @given(st.lists(unit_telemetries, max_size=10),
           st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_fold_order_independent(self, units, rnd):
        shuffled = list(units)
        rnd.shuffle(shuffled)
        assert _fold(units) == _fold(shuffled)

    @given(st.lists(unit_telemetries, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_lossless(self, units):
        """The manifest telemetry block reconstructs the aggregate exactly."""
        ct = _fold(units)
        back = CampaignTelemetry.from_dict(json.loads(json.dumps(
            ct.to_dict())))
        assert back == ct
        assert back.to_dict() == ct.to_dict()

    @given(unit_telemetries)
    @settings(max_examples=40, deadline=None)
    def test_singleton_fold_equals_unit(self, ut):
        ct = _fold([ut])
        assert ct.units == 1
        assert ct.wall_ns == ut.wall_ns
        assert ct.accesses == ut.accesses
        assert ct.counters == ut.counters
        assert set(ct.workers) == {str(ut.pid)}

    def test_merge_mutates_neither(self):
        a = _fold([UnitTelemetry(pid=1, wall_ns=5, counters={"x": 1})])
        b = _fold([UnitTelemetry(pid=1, wall_ns=7, counters={"x": 2})])
        merged = a.merge(b)
        assert merged.wall_ns == 12 and merged.counters == {"x": 3}
        assert a.wall_ns == 5 and b.wall_ns == 7

    def test_warning_dedup_counts_and_min_message(self):
        u1 = UnitTelemetry(pid=1, warnings={"k": "zebra"})
        u2 = UnitTelemetry(pid=2, warnings={"k": "aardvark"})
        ct = _fold([u1, u2])
        assert ct.warnings == {
            "k": {"count": 2, "message": "aardvark"}}

    def test_hot_spans_ranked_by_total(self):
        ct = _fold([UnitTelemetry(
            pid=1, spans={"slow": _stats_from([100, 100]),
                          "fast": _stats_from([10])})])
        assert [n for n, _ in ct.hot_spans(2)] == ["slow", "fast"]


# ---- capture protocol -------------------------------------------------------


class TestCapture:
    def test_owned_capture_restores_disabled_registry(self):
        reg = Registry()
        assert not reg.enabled
        cap = obstel.begin_unit(reg)
        assert reg.enabled  # capture enabled it
        with reg.span("core_replay"):
            reg.add("filter.accesses", 42)
        ut = obstel.end_unit(cap, label="unit-x",
                             meta={"fast_path": True, "accesses": 7,
                                   "filter": {"engine": "kernel"}})
        assert not reg.enabled  # ... and re-disabled it
        assert reg.events == []  # ... trimming the events it recorded
        assert ut.label == "unit-x"
        assert ut.pid == os.getpid()
        assert ut.engine == "kernel"
        assert ut.accesses == 7
        assert ut.filter_accesses == 42
        assert ut.filter_sources == {"kernel": 1}
        assert "core_replay" in ut.spans
        assert ut.spans["core_replay"].count == 1
        assert ut.wall_ns > 0

    def test_enabled_registry_left_alone_and_delta_only(self):
        reg = Registry()
        reg.enable()
        reg.add("pre.existing", 5)
        with reg.span("before"):
            pass
        n_before = len(reg.events)
        cap = obstel.begin_unit(reg)
        reg.add("pre.existing", 3)
        ut = obstel.end_unit(cap)
        assert reg.enabled
        assert len(reg.events) >= n_before  # events kept (parent lane)
        assert ut.counters == {"pre.existing": 3}  # delta, not absolute
        assert "before" not in ut.spans

    def test_abort_unit_restores_owned_registry(self):
        reg = Registry()
        cap = obstel.begin_unit(reg)
        reg.add("junk", 1)
        obstel.abort_unit(cap)
        assert not reg.enabled
        assert reg.events == []

    def test_new_warnings_shipped_with_delta(self):
        reg = Registry()
        reg.warn("old news", key="old")
        cap = obstel.begin_unit(reg)
        reg.warn("fresh problem", key="fresh")
        ut = obstel.end_unit(cap)
        assert ut.warnings == {"fresh": "fresh problem"}

    def test_filter_sources_multicore_map(self):
        reg = Registry()
        cap = obstel.begin_unit(reg)
        ut = obstel.end_unit(cap, meta={"filter": {
            "mcf": {"engine": "kernel"}, "lbm": None,
            "gcc": {"engine": "store"}}})
        assert ut.filter_sources == {"kernel": 1, "memo": 1, "store": 1}


class TestWarnDedup:
    def test_quiet_env_suppresses_print_but_records(self, capfd, monkeypatch):
        reg = Registry()
        monkeypatch.setenv(ENV_QUIET, "1")
        reg.warn("muzzled", key="m")
        assert "muzzled" not in capfd.readouterr().err
        assert reg._warned == {"m": "muzzled"}

    def test_force_overrides_quiet(self, capfd, monkeypatch):
        reg = Registry()
        monkeypatch.setenv(ENV_QUIET, "1")
        reg.warn("audible", key="a", force=True)
        assert "audible" in capfd.readouterr().err

    def test_multi_worker_warning_printed_once(self, capfd, clean_env,
                                               monkeypatch):
        """Slow-path warning raised in 2 quieted workers lands on stderr
        exactly once, via the parent's fold-time reprint."""
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_OVERSUBSCRIBE", "1")
        monkeypatch.setenv("REPRO_FAST_PATH", "0")
        specs = [RunSpec(workload=a, config="Homogen-DDR3",
                         policy="homogen", n_accesses=2000)
                 for a in ("mcf", "milc", "lbm", "gcc")]
        engine.reset()
        try:
            engine.configure(None)
            engine.configure_telemetry(True)
            engine.execute(specs, phase="dedup-test")
            ct = engine.campaign_telemetry()
            assert ct.units == 4
            assert len(ct.workers) == 2
            assert "slow-path" in ct.warnings
            err = capfd.readouterr().err
            assert err.count("fast paths disabled") == 1
        finally:
            engine.reset()
            OBS.reset().disable()


class TestMergedTrace:
    def test_out_of_process_unit_gets_worker_lane(self):
        reg = Registry()
        ut = UnitTelemetry(
            pid=os.getpid() + 1, label="mcf|sys", wall_start=100.0,
            events=[{"type": "span", "span_id": 1, "parent_id": 0,
                     "name": "core_replay", "depth": 0,
                     "start_ns": 10_000, "end_ns": 40_000, "args": {}}])
        doc = obstel.merged_trace_doc(reg, [ut])
        events = doc["traceEvents"]
        lanes = {e["args"]["name"]: e["pid"] for e in events
                 if e.get("name") == "process_name"}
        assert f"worker {ut.pid}" in lanes
        span = next(e for e in events if e.get("ph") == "X")
        assert span["pid"] == ut.pid
        assert span["dur"] == pytest.approx(30.0)  # 30_000 ns -> 30 us
        assert span["args"]["unit"] == "mcf|sys"

    def test_in_parent_units_skipped_when_registry_enabled(self):
        reg = Registry()
        reg.enable()
        with reg.span("core_replay"):
            pass
        ut = UnitTelemetry(
            pid=os.getpid(), label="dup", wall_start=100.0,
            events=[{"type": "span", "span_id": 1, "parent_id": 0,
                     "name": "core_replay", "depth": 0,
                     "start_ns": 10, "end_ns": 20, "args": {}}])
        doc = obstel.merged_trace_doc(reg, [ut])
        dup = [e for e in doc["traceEvents"]
               if e.get("args", {}).get("unit") == "dup"]
        assert dup == []  # already in the parent lane; not duplicated


# ---- dashboard --------------------------------------------------------------


class _FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestDashboard:
    def test_non_tty_stream_uses_plain_lines(self, tmp_path):
        import io
        out = io.StringIO()
        assert not supports_repaint(out)
        clock = _FakeClock()
        dash = Dashboard(stream=out, clock=clock,
                         heartbeat_path=tmp_path / HEARTBEAT_NAME,
                         stats_provider=lambda: {
                             "cache": {"hit_ratio": 0.5},
                             "hot_spans": [("core_replay", 1.5)]})
        dash.campaign_begin(["fig08"], "tiny")
        dash.figure_begin("fig08")
        dash.on_event({"kind": "phase_begin", "phase": "p", "total": 4,
                       "cached": 1})
        clock.t += 10.0
        for _ in range(3):
            dash.on_event({"kind": "unit_done", "phase": "p",
                           "label": "u", "ok": True})
            clock.t += 10.0
        dash.figure_end("fig08", "ok")
        dash.campaign_end()
        text = out.getvalue()
        assert "\r" not in text  # plain lines, no repaints
        assert "units 4/4" in text
        assert "(1 cached)" in text
        assert "cache 0.50" in text
        assert "hot core_replay:1.5s" in text
        assert "fig08: ok" in text
        assert text.strip().endswith("| done")

    def test_heartbeat_written_atomically(self, tmp_path):
        import io
        clock = _FakeClock()
        hb = tmp_path / HEARTBEAT_NAME
        dash = Dashboard(stream=io.StringIO(), clock=clock,
                         heartbeat_path=hb)
        dash.campaign_begin(["smoke"], "tiny")
        dash.on_event({"kind": "phase_begin", "phase": "p", "total": 2,
                       "cached": 0})
        dash.on_event({"kind": "unit_done", "phase": "p", "label": "u",
                       "ok": False})
        dash.figure_end("smoke", "ok")
        doc = json.loads(hb.read_text())
        assert doc["units_done"] == 1
        assert doc["units_total"] == 2
        assert doc["failed_units"] == 1
        assert doc["figures_done"] == 1
        assert not hb.with_suffix(hb.suffix + ".tmp").exists()

    def test_throughput_and_eta(self):
        import io
        clock = _FakeClock()
        dash = Dashboard(stream=io.StringIO(), clock=clock)
        dash.campaign_begin(["x"], "tiny")
        dash.on_event({"kind": "phase_begin", "phase": "p", "total": 10,
                       "cached": 0})
        for _ in range(5):
            clock.t += 1.0
            dash.on_event({"kind": "unit_done", "phase": "p", "label": "u",
                           "ok": True})
        assert dash.throughput() == pytest.approx(1.0)
        assert dash.eta_seconds() == pytest.approx(5.0)

    def test_stats_provider_errors_swallowed(self):
        import io

        def boom():
            raise RuntimeError("stats broke")

        dash = Dashboard(stream=io.StringIO(), clock=_FakeClock(),
                         stats_provider=boom)
        dash.campaign_begin(["x"], "tiny")  # must not raise


# ---- bench history ----------------------------------------------------------


class TestBench:
    def test_append_and_read(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        bench.append_record({"kind": "campaign", "fidelity": "tiny",
                             "replay_acc_per_s": 100.0}, path)
        bench.append_record({"kind": "campaign", "fidelity": "tiny",
                             "replay_acc_per_s": 110.0}, path)
        records = bench.read_history(path)
        assert len(records) == 2
        assert all(r["schema"] == bench.BENCH_SCHEMA for r in records)
        assert all("host" in r for r in records)

    def test_campaign_record_fields(self):
        ct = CampaignTelemetry()
        ct.add_unit(UnitTelemetry(
            pid=1, wall_ns=2 * 10**9, accesses=1000, filter_accesses=500,
            spans={"core_replay": _stats_from([10**9]),
                   "cache_filter": _stats_from([10**9])}))
        rec = bench.campaign_record("tiny", ct,
                                    cache={"hit_ratio": 0.25})
        assert rec["kind"] == "campaign"
        assert rec["units"] == 1
        assert rec["replay_acc_per_s"] == pytest.approx(1000.0)
        assert rec["filter_acc_per_s"] == pytest.approx(500.0)
        assert rec["cache_hit_ratio"] == 0.25
        assert rec["phase_seconds"]["core_replay"] == pytest.approx(1.0)

    def test_trend_regression_flagged(self, tmp_path):
        host = bench.host_fingerprint()
        history = [
            {"kind": "campaign", "host": host, "fidelity": "tiny",
             "replay_acc_per_s": 1000.0, "filter_acc_per_s": 900.0}
            for _ in range(3)
        ] + [{"kind": "campaign", "host": host, "fidelity": "tiny",
              "replay_acc_per_s": 100.0, "filter_acc_per_s": 900.0}]
        flags = bench.check_regressions(history, baseline_dir=tmp_path)
        assert len(flags) == 1
        assert "replay_acc_per_s" in flags[0]

    def test_hotpath_floor_regression(self, tmp_path):
        (tmp_path / "hotpath_baseline.json").write_text(
            json.dumps({"speedup": 10.0}))
        history = [{"kind": "hotpath", "replay_speedup": 2.0}]
        flags = bench.check_regressions(history, baseline_dir=tmp_path)
        assert flags and "replay_speedup" in flags[0]
        ok = [{"kind": "hotpath", "replay_speedup": 9.0}]
        assert bench.check_regressions(ok, baseline_dir=tmp_path) == []

    def test_cross_host_records_not_compared(self, tmp_path):
        other = {**bench.host_fingerprint(), "node": "elsewhere"}
        history = [
            {"kind": "campaign", "host": other, "fidelity": "tiny",
             "replay_acc_per_s": 10000.0},
            {"kind": "campaign", "host": bench.host_fingerprint(),
             "fidelity": "tiny", "replay_acc_per_s": 100.0},
        ]
        assert bench.check_regressions(history, baseline_dir=tmp_path) == []

    def test_report_main_round_trip(self, tmp_path, capsys, clean_env):
        hist = tmp_path / "hist.jsonl"
        bench.append_record({"kind": "campaign", "fidelity": "tiny",
                             "replay_acc_per_s": 123.0}, hist)
        out_path = tmp_path / "summary.json"
        rc = exp_main(["bench-report", "--history", str(hist),
                       "--out", str(out_path)])
        assert rc == 0
        assert "bench history: 1 records" in capsys.readouterr().out
        summary = json.loads(out_path.read_text())
        assert summary["history_records"] == 1
        assert summary["regressions"] == []
        assert summary["latest_campaign"]["replay_acc_per_s"] == 123.0

    def test_report_main_missing_hotpath_dir(self, tmp_path, clean_env):
        rc = exp_main(["bench-report", "--history",
                       str(tmp_path / "h.jsonl"),
                       "--record-hotpath", str(tmp_path / "empty")])
        assert rc == 2

    def test_report_main_records_hotpath(self, tmp_path, clean_env):
        bdir = tmp_path / "bench"
        bdir.mkdir()
        (bdir / "BENCH_hotpath.json").write_text(json.dumps(
            {"speedup": 8.0, "fast_records_per_sec": 1e6}))
        hist = tmp_path / "h.jsonl"
        rc = exp_main(["bench-report", "--history", str(hist),
                       "--record-hotpath", str(bdir),
                       "--baseline-dir", str(tmp_path)])
        assert rc == 0
        records = bench.read_history(hist)
        assert records[-1]["kind"] == "hotpath"
        assert records[-1]["replay_speedup"] == 8.0


# ---- acceptance: real campaign through the CLI ------------------------------

FIG08_SYSTEMS = 6  #: columns beside the app name in fig08


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """One cold ``fig08 --fidelity tiny`` campaign, telemetry on."""
    base = tmp_path_factory.mktemp("telemetry_campaign")
    save, cache = base / "save", base / "cache"
    saved_env = {k: os.environ.pop(k) for k in _CAMPAIGN_ENV
                 if k in os.environ}
    _runner.single_sweep.cache_clear()
    try:
        rc = exp_main(["fig08", "--fidelity", "tiny", "--save", str(save),
                       "--cache-dir", str(cache)])
    finally:
        os.environ.update(saved_env)
    assert rc == 0
    return save, cache


class TestCampaignAcceptance:
    def test_manifest_telemetry_consistent_with_run(self, campaign):
        save, _ = campaign
        doc = json.loads((save / "manifest.json").read_text())
        telem = doc["telemetry"]
        n_units = len(APPS) * FIG08_SYSTEMS
        fidelity = _runner.FIDELITIES["tiny"]
        assert telem["version"] == obstel.TELEMETRY_VERSION
        assert telem["units"] == n_units
        assert telem["cached_units"] == 0
        assert telem["failed_units"] == 0
        assert telem["accesses"] == n_units * fidelity.n_single
        assert telem["wall_ns"] > 0
        # Worker map is consistent: per-worker unit counts and busy time
        # sum to the campaign totals.
        workers = telem["workers"]
        assert len(workers) >= 1
        assert sum(w["units"] for w in workers.values()) == n_units
        assert sum(w["busy_ns"] for w in workers.values()) == telem["wall_ns"]
        # Hot phases of the simulation appear as merged spans with
        # percentiles, one closed span per unit.
        for name in ("core_replay", "placement"):
            span = telem["spans"][name]
            assert span["count"] == n_units
            assert 0 < span["p50_ns"] <= span["p95_ns"] <= span["p99_ns"]
            assert span["total_ns"] <= telem["wall_ns"]
        assert telem["engines"]  # kernel or reference, but recorded

    def test_manifest_block_round_trips(self, campaign):
        save, _ = campaign
        doc = json.loads((save / "manifest.json").read_text())
        ct = CampaignTelemetry.from_dict(doc["telemetry"])
        assert ct.to_dict() == doc["telemetry"]

    def test_telemetry_jsonl_structure(self, campaign):
        save, _ = campaign
        lines = [json.loads(line) for line in
                 (save / "telemetry.jsonl").read_text().splitlines()]
        assert lines[0]["type"] == "header"
        assert lines[-1]["type"] == "campaign"
        units = [ln for ln in lines if ln["type"] == "unit"]
        assert len(units) == lines[-1]["units"]
        # The campaign line is exactly the fold of the unit lines.
        folded = _fold([UnitTelemetry.from_dict(u) for u in units])
        assert folded.wall_ns == lines[-1]["wall_ns"]
        assert folded.counters == lines[-1]["counters"]
        assert folded.accesses == lines[-1]["accesses"]

    def test_trace_json_merges_all_unit_lanes(self, campaign):
        save, _ = campaign
        doc = json.loads((save / "trace.json").read_text())
        events = doc["traceEvents"]
        unit_spans = [e for e in events if e.get("ph") == "X"
                      and e.get("args", {}).get("unit")]
        assert unit_spans
        assert all("ts" in e and "dur" in e for e in unit_spans)
        labels = {e["args"]["unit"] for e in unit_spans}
        assert len(labels) == len(APPS) * FIG08_SYSTEMS

    def test_warm_rerun_accounts_cached_units(self, campaign, clean_env):
        save, cache = campaign
        _runner.single_sweep.cache_clear()
        rc = exp_main(["fig08", "--fidelity", "tiny", "--save", str(save),
                       "--cache-dir", str(cache), "--no-resume"])
        assert rc == 0
        telem = json.loads((save / "manifest.json").read_text())["telemetry"]
        assert telem["units"] == 0
        assert telem["cached_units"] == len(APPS) * FIG08_SYSTEMS

    def test_rows_identical_without_telemetry(self, campaign, tmp_path,
                                              clean_env):
        """--no-telemetry must not perturb a single figure number."""
        save, cache = campaign
        off = tmp_path / "off"
        _runner.single_sweep.cache_clear()
        # --no-cache forces a cold recompute, so the comparison covers
        # the simulation path, not just cached-artefact integrity.
        rc = exp_main(["fig08", "--fidelity", "tiny", "--save", str(off),
                       "--no-cache", "--no-telemetry"])
        assert rc == 0
        rows_on = json.loads((save / "fig08.json").read_text())["rows"]
        rows_off = json.loads((off / "fig08.json").read_text())["rows"]
        assert rows_on == rows_off
        manifest = json.loads((off / "manifest.json").read_text())
        assert "telemetry" not in manifest
        assert not (off / "telemetry.jsonl").exists()
        assert not (off / "trace.json").exists()
