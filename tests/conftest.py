"""Shared fixtures: small deterministic traces, systems, and streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cpu.hierarchy import CacheHierarchy
from repro.memctrl.system import ChannelGroup, MemorySystem
from repro.memdev.presets import DDR3, HBM, LPDDR2, RLDRAM3
from repro.trace.builder import ObjectBehavior, TraceBuilder
from repro.util.rng import stream
from repro.util.units import KIB, MIB


@pytest.fixture
def rng() -> np.random.Generator:
    return stream("tests", "fixture")


@pytest.fixture
def tiny_behaviors() -> list[ObjectBehavior]:
    """Three-object app: one chase (L), one stream (B), one hot (N)."""
    return [
        ObjectBehavior("chasey", 4 * MIB, 0.3, pattern="chase",
                       gap_mean=15, burst_mean=16, site=1),
        ObjectBehavior("streamy", 4 * MIB, 0.3, pattern="strided",
                       stride=256, gap_mean=5, burst_mean=64, site=2),
        ObjectBehavior("hotty", 64 * KIB, 0.4, pattern="hotspot",
                       hot_fraction=0.5, hot_weight=0.99, gap_mean=6,
                       burst_mean=8, site=3),
    ]


@pytest.fixture
def tiny_trace(tiny_behaviors, rng):
    return TraceBuilder(tiny_behaviors).build(20_000, rng)


@pytest.fixture
def tiny_stream(tiny_trace):
    miss_stream, stats = CacheHierarchy().filter_trace(tiny_trace)
    return miss_stream


@pytest.fixture
def ddr3_system() -> MemorySystem:
    return MemorySystem(
        {"main": ChannelGroup(DDR3, 4, 16 * MIB, name="DDR3")},
        name="test-ddr3",
    )


@pytest.fixture
def hetero_system() -> MemorySystem:
    return MemorySystem(
        {
            "lat": ChannelGroup(RLDRAM3, 1, 8 * MIB, name="RL"),
            "bw": ChannelGroup(HBM, 1, 16 * MIB, name="HBM"),
            "pow": ChannelGroup(LPDDR2, 2, 16 * MIB, name="LP"),
        },
        name="test-hetero",
    )
