"""Tests for object naming and the profiling LUT."""

import pytest

from repro.moca.lut import ObjectProfile, ProfileLUT
from repro.moca.naming import (
    MAX_DEPTH,
    ObjectName,
    name_from_python_stack,
    name_from_site,
)


class TestObjectName:
    def test_frames_required(self):
        with pytest.raises(ValueError):
            ObjectName(())

    def test_depth_capped(self):
        with pytest.raises(ValueError):
            ObjectName(tuple(range(1, MAX_DEPTH + 2)))

    def test_alloc_return_address(self):
        n = ObjectName((0x400100, 0x400200))
        assert n.alloc_return_address == 0x400100

    def test_str_form(self):
        assert str(ObjectName((0x10, 0x20))) == "0x10/0x20"

    def test_hashable_and_ordered(self):
        a = ObjectName((1, 2))
        b = ObjectName((1, 3))
        assert a == ObjectName((1, 2))
        assert a < b
        assert len({a, b, ObjectName((1, 2))}) == 2


class TestNameFromSite:
    def test_deterministic(self):
        assert name_from_site(101) == name_from_site(101)

    def test_distinct_sites_distinct_names(self):
        names = {name_from_site(s) for s in range(200)}
        assert len(names) == 200

    def test_depth(self):
        assert len(name_from_site(5).frames) == MAX_DEPTH
        assert len(name_from_site(5, depth=2).frames) == 2

    def test_depth_validated(self):
        with pytest.raises(ValueError):
            name_from_site(1, depth=0)
        with pytest.raises(ValueError):
            name_from_site(1, depth=6)

    def test_addresses_look_like_text_segment(self):
        for f in name_from_site(7).frames:
            assert 0x0040_0000 <= f < 0x0050_0000
            assert f % 2 == 0


class TestNameFromPythonStack:
    def test_same_call_site_same_name(self):
        def alloc():
            return name_from_python_stack()
        assert alloc() == alloc()

    def test_different_call_sites_differ(self):
        a = name_from_python_stack()
        b = name_from_python_stack()
        assert a != b  # different line numbers

    def test_depth_validated(self):
        with pytest.raises(ValueError):
            name_from_python_stack(depth=0)


def _profile(site=1, misses=100, loads=80, stalls=4000, ki=10.0, size=4096):
    return ObjectProfile(
        name=name_from_site(site), label=f"obj{site}", size_bytes=size,
        accesses=1000, llc_misses=misses, load_misses=loads,
        stall_cycles=stalls, kilo_instructions=ki,
    )


class TestObjectProfile:
    def test_mpki(self):
        assert _profile(misses=100, ki=10.0).llc_mpki == pytest.approx(10.0)

    def test_stall_per_miss(self):
        p = _profile(loads=80, stalls=4000)
        assert p.stall_per_load_miss == pytest.approx(50.0)

    def test_zero_divisions(self):
        p = _profile(misses=0, loads=0, stalls=0, ki=0.0)
        assert p.llc_mpki == 0.0
        assert p.stall_per_load_miss == 0.0

    def test_merge_accumulates(self):
        a = _profile(misses=100, ki=10.0)
        a.merge(_profile(misses=50, ki=5.0))
        assert a.llc_misses == 150
        assert a.kilo_instructions == pytest.approx(15.0)

    def test_merge_weighted(self):
        a = _profile(misses=100, ki=10.0)
        a.merge(_profile(misses=100, ki=10.0), weight=0.5)
        assert a.llc_misses == 150

    def test_merge_rejects_other_object(self):
        a = _profile(site=1)
        with pytest.raises(ValueError):
            a.merge(_profile(site=2))


class TestProfileLUT:
    def test_register_and_get(self):
        lut = ProfileLUT("app")
        p = _profile()
        lut.register(p)
        assert lut.get(p.name) is p
        assert p.name in lut
        assert len(lut) == 1

    def test_register_merges_same_name(self):
        lut = ProfileLUT()
        lut.register(_profile(misses=100))
        lut.register(_profile(misses=50))
        assert len(lut) == 1
        assert lut.get(name_from_site(1)).llc_misses == 150

    def test_hottest_ordering(self):
        lut = ProfileLUT()
        lut.register(_profile(site=1, misses=10))
        lut.register(_profile(site=2, misses=1000))
        lut.register(_profile(site=3, misses=100))
        hottest = lut.hottest(2)
        assert [p.label for p in hottest] == ["obj2", "obj3"]

    def test_totals(self):
        lut = ProfileLUT()
        lut.register(_profile(site=1, misses=100, loads=50, stalls=1000,
                              ki=10.0))
        lut.register(_profile(site=2, misses=50, loads=50, stalls=3000,
                              ki=10.0))
        mpki, spm = lut.totals()
        assert mpki == pytest.approx(15.0)
        assert spm == pytest.approx(40.0)

    def test_totals_empty(self):
        assert ProfileLUT().totals() == (0.0, 0.0)

    def test_iteration(self):
        lut = ProfileLUT()
        lut.register(_profile(site=1))
        lut.register(_profile(site=2))
        assert len(list(lut)) == 2
