"""Extra controller-layer coverage: hashing behaviour under real pools,
multi-group accounting, and scheduler/controller interplay."""

import numpy as np
import pytest

from repro.memctrl.addrmap import GroupAddressMap, LINE_BYTES
from repro.memctrl.request import MemRequest
from repro.memctrl.scheduler import fcfs_order
from repro.memctrl.system import ChannelGroup, MemorySystem
from repro.memdev.presets import DDR3, HBM
from repro.util.units import MIB


class TestChannelHash:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_bijective_over_a_window(self, n):
        """No two lines may collide on (channel, local address)."""
        amap = GroupAddressMap(n)
        seen = set()
        for line in range(4096):
            key = amap.route(line * LINE_BYTES)
            assert key not in seen
            seen.add(key)

    @pytest.mark.parametrize("n", [3, 5])
    def test_non_pow2_fallback_bijective(self, n):
        amap = GroupAddressMap(n)
        seen = set()
        for line in range(1024):
            key = amap.route(line * LINE_BYTES)
            assert key not in seen
            seen.add(key)
            assert amap.inverse(*key) == line * LINE_BYTES

    def test_page_stride_spreads(self):
        """4 KiB-stride page-hops (the cold-object pattern) spread too."""
        amap = GroupAddressMap(4)
        chans = {amap.route(i * 4096)[0] for i in range(256)}
        assert len(chans) == 4

    def test_balanced_distribution_sequential(self):
        amap = GroupAddressMap(4)
        counts = [0] * 4
        for line in range(4096):
            counts[amap.route(line * LINE_BYTES)[0]] += 1
        assert max(counts) - min(counts) == 0  # perfectly balanced


class TestHbmSubchannels:
    def test_eight_subchannels(self):
        assert HBM.n_subchannels == 8

    def test_peak_bandwidth_matches_jesd235(self):
        """HBM1: 8 channels x 128 bit x 1 GT/s = 128 GB/s per stack."""
        assert HBM.peak_bandwidth_gbps() == pytest.approx(128.0)

    def test_sequential_uses_many_subchannels(self):
        from repro.memdev.module import MemoryModule
        m = MemoryModule(HBM, 32 * MIB)
        subs = {m.decode(a)[0] for a in range(0, 256 * 1024, 64)}
        assert len(subs) == 8


class TestControllerInterplay:
    def test_fcfs_group(self):
        g = ChannelGroup(DDR3, 2, 8 * MIB, scheduler=fcfs_order)
        reqs = [MemRequest(group=0, gaddr=i * 64, issue_cycle=i)
                for i in range(10)]
        g.service_batch(reqs)
        assert all(r.done_cycle > 0 for r in reqs)

    def test_batch_requests_keep_issue_causality(self, ddr3_system):
        """A request never completes before it was issued."""
        rng = np.random.default_rng(3)
        reqs = [MemRequest(group=0, gaddr=int(a) * 64, issue_cycle=i * 3)
                for i, a in enumerate(rng.integers(0, 1 << 16, 64))]
        ddr3_system.service_batch(reqs)
        for r in reqs:
            assert r.done_cycle > r.issue_cycle
            assert r.latency == r.queue_cycles + r.service_cycles

    def test_mean_latency_reflects_contention(self):
        sys_a = MemorySystem({"main": ChannelGroup(DDR3, 4, 8 * MIB)})
        sys_b = MemorySystem({"main": ChannelGroup(DDR3, 4, 8 * MIB)})
        rng = np.random.default_rng(9)
        addrs = (rng.integers(0, 1 << 15, 200) * 64).tolist()
        # Relaxed arrivals vs a burst at the same cycle.
        sys_a.service_batch([MemRequest(group=0, gaddr=a, issue_cycle=i * 200)
                             for i, a in enumerate(addrs)])
        sys_b.service_batch([MemRequest(group=0, gaddr=a, issue_cycle=0)
                             for a in addrs])
        lat_a = sys_a.summary(10**9).total_latency_cycles
        lat_b = sys_b.summary(10**9).total_latency_cycles
        assert lat_b > lat_a
