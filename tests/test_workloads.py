"""Tests for the synthetic application suite and workload mixes."""

import pytest

from repro.trace.events import PAGE_BYTES
from repro.workloads.inputs import REF, TRAIN, build_app_trace, input_names
from repro.workloads.mixes import MIX_NAMES, MIXES, mix, parse_mix_name
from repro.workloads.spec import APP_CLASSES, APPS, app, apps_in_class


class TestAppSpecs:
    def test_ten_apps(self):
        assert len(APPS) == 10

    def test_table3_classes(self):
        """Table III of the paper, verbatim."""
        assert apps_in_class("L") == ["mcf", "milc", "libquantum", "disparity"]
        assert apps_in_class("B") == ["mser", "lbm", "tracking"]
        assert apps_in_class("N") == ["gcc", "sift", "stitch"]

    def test_lookup(self):
        assert app("mcf").suite == "spec2006"
        assert app("disparity").suite == "sdvbs"
        with pytest.raises(KeyError):
            app("nginx")
        with pytest.raises(ValueError):
            apps_in_class("X")

    def test_every_app_has_segments_and_heap(self):
        for spec in APPS.values():
            heap = spec.heap_behaviors()
            segs = [b for b in spec.behaviors if b.segment is not None]
            assert len(heap) >= 3, spec.name
            assert len(segs) == 3, spec.name

    def test_sites_unique_across_suite(self):
        sites = [b.site for s in APPS.values() for b in s.heap_behaviors()]
        assert len(sites) == len(set(sites))

    def test_weights_positive(self):
        for spec in APPS.values():
            assert all(b.weight > 0 for b in spec.behaviors)

    def test_l_apps_have_dependent_objects(self):
        for name in apps_in_class("L"):
            assert any(b.effective_dep_prob > 0.2
                       for b in app(name).heap_behaviors()), name

    def test_b_apps_have_streaming_objects(self):
        for name in apps_in_class("B"):
            assert any(b.pattern in ("seq", "strided")
                       and b.effective_dep_prob < 0.2
                       for b in app(name).heap_behaviors()), name

    def test_disparity_anecdote_ordering(self):
        """Sec. VI-A: the lower-MPKI major object (img_pyramid) must be
        instantiated before the hot sad_cost object."""
        names = [b.name for b in app("disparity").heap_behaviors()]
        assert names.index("img_pyramid") < names.index("sad_cost")

    def test_footprints_exceed_scaled_rldram(self):
        """Sec. VI-A: app footprints exceed the individual module
        capacity (config1's RLDRAM is 32 MiB at 1:8 scale)."""
        for name in ("mcf", "milc", "libquantum", "disparity"):
            assert app(name).heap_footprint_bytes() > 32 * (1 << 20), name

    def test_class_dict_matches_specs(self):
        assert APP_CLASSES == {n: s.paper_class for n, s in APPS.items()}


class TestInputs:
    def test_input_names(self):
        assert input_names() == (TRAIN, REF)

    def test_train_vs_ref_differ(self):
        t = build_app_trace("mcf", TRAIN, 10_000)
        r = build_app_trace("mcf", REF, 10_000)
        assert not (t.vaddr[:100] == r.vaddr[:100]).all()

    def test_ref_footprint_grows(self):
        t = build_app_trace("gcc", TRAIN, 5_000)
        r = build_app_trace("gcc", REF, 5_000)
        assert (r.layout.heap_footprint_bytes()
                > t.layout.heap_footprint_bytes())

    def test_memoization_identity(self):
        a = build_app_trace("sift", TRAIN, 5_000)
        b = build_app_trace("sift", TRAIN, 5_000)
        assert a is b

    def test_unknown_input_rejected(self):
        with pytest.raises(ValueError):
            build_app_trace("mcf", "validation", 1000)

    def test_trace_objects_match_spec(self):
        t = build_app_trace("lbm", TRAIN, 5_000)
        names = {o.name for o in t.layout.objects}
        assert {"grid_src", "grid_dst", "obstacle"} <= names

    def test_page_aligned_sizes_in_ref(self):
        r = build_app_trace("mcf", REF, 5_000)
        for o in r.layout.objects:
            assert o.size_bytes % PAGE_BYTES == 0


class TestMixes:
    def test_parse(self):
        assert parse_mix_name("2L1B1N") == {"L": 2, "B": 1, "N": 1}
        assert parse_mix_name("4L") == {"L": 4, "B": 0, "N": 0}

    @pytest.mark.parametrize("bad", ["", "4X", "L2", "2l", "2L1B1N!", "0L"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_mix_name(bad)

    def test_mix_composition(self):
        m = mix("3L1B")
        assert m.apps == ("mcf", "milc", "libquantum", "mser")
        assert m.n_cores == 4

    def test_mix_wraps_class_list(self):
        m = mix("4B")  # only three B apps exist
        assert m.apps == ("mser", "lbm", "tracking", "mser")

    def test_canonical_mixes_all_four_cores(self):
        assert len(MIX_NAMES) == 10
        for name in MIX_NAMES:
            assert MIXES[name].n_cores == 4

    def test_mix_deterministic(self):
        assert mix("2L1B1N") == mix("2L1B1N")
