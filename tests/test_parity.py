"""Fast-path vs reference replay parity: bit-identical, at volume.

The kernelized SoA replay (``repro.memctrl.batch`` consumed by
``InOrderWindowCore`` in fast mode) is an *optimization*, not a model
change: for any trace, memory system, and core parameterization it must
produce byte-for-byte the same :class:`CoreResult` and leave the memory
system in byte-for-byte the same state (module counters, controller
counters, latency histograms, per-bank timing state) as the retained
per-record reference interpreter.

This file pins that contract three ways:

* a seeded bulk sweep over >= 10k random tiny traces (mixed request
  kinds, dependence chains, fractional IPC, multi-group heterogeneous
  systems, derated timings that exercise the tRAS precharge guard,
  FCFS and FR-FCFS scheduling, single-core and multicore heap
  interleave);
* hypothesis property tests (fewer examples, but shrinkable — a failure
  here minimizes itself);
* whole-pipeline ``run(spec)`` comparisons plus pinned cache keys and
  result digests, so the fast path can never silently change either the
  numbers or the cache identity of a default-valued spec.
"""

import dataclasses
import hashlib
import heapq
import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.core import CoreParams, InOrderWindowCore
from repro.cpu.hierarchy import (
    KIND_LOAD,
    KIND_PREFETCH,
    KIND_STORE,
    KIND_WRITEBACK,
    MissStream,
)
from repro.memctrl.scheduler import fcfs_order
from repro.memctrl.system import ChannelGroup, MemorySystem
from repro.memdev.presets import DDR3, HBM, LPDDR2, RLDRAM3
from repro.sim.spec import RunSpec, run
from repro.util.units import MIB

# ---- system recipes ---------------------------------------------------------
#
# Each entry: (builder, [per-group capacity in bytes]).  Fresh systems per
# replay — bank/bus state is mutable and must start identical on both paths.

_RECIPES = [
    # Single channel, FR-FCFS: the simplest configuration.
    (lambda: MemorySystem({"main": ChannelGroup(DDR3, 1, 8 * MIB)}),
     [8 * MIB]),
    # Two channels: power-of-two XOR channel hashing in the address map.
    (lambda: MemorySystem({"main": ChannelGroup(DDR3, 2, 4 * MIB)}),
     [8 * MIB]),
    # Three channels + FCFS: modulo routing and the other scheduler mode.
    (lambda: MemorySystem({"main": ChannelGroup(HBM, 3, 4 * MIB,
                                                scheduler=fcfs_order)}),
     [12 * MIB]),
    # Heterogeneous three-group system with derated (fault-injected)
    # timings: odd cycle counts exercise the tRAS-before-precharge guard.
    (lambda: MemorySystem({
        "fast": ChannelGroup(RLDRAM3.scaled(1.1), 1, 4 * MIB),
        "mid": ChannelGroup(HBM, 2, 4 * MIB),
        "pow": ChannelGroup(LPDDR2.scaled(1.25), 1, 8 * MIB),
    }), [4 * MIB, 8 * MIB, 8 * MIB]),
]

_PARAMS = [
    CoreParams(),
    CoreParams(ipc=0.1),                      # fractional IPC, den=10
    CoreParams(ipc=1.5, rob_size=16, mshr=4),
    CoreParams(ipc=0.3, lq_size=2),           # tiny episodes
    CoreParams(ipc=2.0, backlog=16),          # tight non-demand backlog
    CoreParams(mshr=1),                       # no overlap at all
]

_KINDS = np.array([KIND_LOAD, KIND_STORE, KIND_WRITEBACK, KIND_PREFETCH],
                  dtype=np.int8)


def _random_trace(rng, caps):
    """One random tiny (stream, groups, gaddrs) against ``caps`` groups."""
    n = int(rng.integers(1, 24))
    gaps = rng.integers(0, 40, size=n)
    inst = (np.cumsum(gaps) + 1).astype(np.int64)
    stream = MissStream(
        inst=inst,
        vline=(rng.integers(0, 1 << 24, size=n) * 64).astype(np.int64),
        obj_id=rng.integers(0, 5, size=n).astype(np.int32),
        dep=rng.random(n) < 0.25,
        kind=_KINDS[rng.integers(0, 4, size=n)],
        total_instructions=int(inst[-1]) + int(rng.integers(0, 50)),
    )
    groups = rng.integers(0, len(caps), size=n).astype(np.int32)
    lines = rng.random(n)  # uniform within each group's capacity
    gaddrs = np.array([int(lines[i] * (caps[groups[i]] // 64)) * 64
                       for i in range(n)], dtype=np.int64)
    return stream, groups, gaddrs


# ---- state snapshots --------------------------------------------------------


def _memsys_doc(memsys):
    """Every observable counter and timing in the system, as one dict."""
    doc = {}
    for gname, g in zip(memsys.group_names, memsys.groups):
        for ci, (c, m) in enumerate(zip(g.controllers, g.modules)):
            doc[f"{gname}/ch{ci}"] = {
                "n_served": c.n_served,
                "queue_cycles": c.total_queue_cycles,
                "service_cycles": c.total_service_cycles,
                "hist": (tuple(c.latency_hist.counts), c.latency_hist.total,
                         c.latency_hist.sum_cycles,
                         c.latency_hist.max_cycles),
                "n_accesses": m.n_accesses,
                "n_row_hits": m.n_row_hits,
                "n_reads": m.n_reads,
                "n_writes": m.n_writes,
                "bus_busy_cycles": m.bus_busy_cycles,
                "bank_busy_cycles": m.bank_busy_cycles,
                "bytes_transferred": m.bytes_transferred,
                "last_done_cycle": m.last_done_cycle,
                "banks": [(b.open_row, b.ready_at, b.last_activate)
                          for sub in m.banks for b in sub],
            }
    return doc


def _replay(stream, groups, gaddrs, params, recipe, fast):
    memsys = recipe()
    core = InOrderWindowCore(stream, groups, gaddrs, params,
                             fast_path=fast)
    res = core.run_to_completion(memsys)
    return res, memsys


def _assert_parity(stream, groups, gaddrs, params, recipe, label=""):
    rf, mf = _replay(stream, groups, gaddrs, params, recipe, fast=True)
    rr, mr = _replay(stream, groups, gaddrs, params, recipe, fast=False)
    assert rf.to_dict() == rr.to_dict(), f"CoreResult diverged {label}"
    assert _memsys_doc(mf) == _memsys_doc(mr), f"memsys diverged {label}"


# ---- the bulk sweep ---------------------------------------------------------


class TestBulkParity:
    def test_ten_thousand_random_traces_single_core(self):
        rng = np.random.default_rng(0xC0FFEE)
        for i in range(10_000):
            recipe, caps = _RECIPES[i % len(_RECIPES)]
            params = _PARAMS[i % len(_PARAMS)]
            stream, groups, gaddrs = _random_trace(rng, caps)
            _assert_parity(stream, groups, gaddrs, params, recipe,
                           label=f"(trace {i})")

    def test_multicore_heap_interleave(self):
        """4 cores sharing one system, advanced in global issue order —
        the exact loop ``repro.sim.multi`` runs.  Interleaving makes the
        cores' episodes contend for the same banks, so parity here pins
        that ``peek_next_issue`` and all shared live state (bank timing,
        bus direction, refresh schedule) agree between paths."""
        rng = np.random.default_rng(0xBEEF)
        for rep in range(150):
            recipe, caps = _RECIPES[rep % len(_RECIPES)]
            params = _PARAMS[rep % len(_PARAMS)]
            traces = [_random_trace(rng, caps) for _ in range(4)]

            outcome = []
            for fast in (True, False):
                memsys = recipe()
                cores = [InOrderWindowCore(s, g, a, params, core_id=i,
                                           fast_path=fast)
                         for i, (s, g, a) in enumerate(traces)]
                heap = [(c.peek_next_issue(), i)
                        for i, c in enumerate(cores) if not c.finished]
                heapq.heapify(heap)
                order = []
                while heap:
                    _, i = heapq.heappop(heap)
                    order.append(i)
                    cores[i].run_episode(memsys)
                    if not cores[i].finished:
                        heapq.heappush(heap,
                                       (cores[i].peek_next_issue(), i))
                results = [c.run_to_completion(memsys) for c in cores]
                outcome.append(([r.to_dict() for r in results], order,
                                _memsys_doc(memsys)))
            assert outcome[0] == outcome[1], f"multicore rep {rep}"

    def test_empty_stream(self):
        stream = MissStream(
            inst=np.array([], dtype=np.int64),
            vline=np.array([], dtype=np.int64),
            obj_id=np.array([], dtype=np.int32),
            dep=np.array([], dtype=bool),
            kind=np.array([], dtype=np.int8),
            total_instructions=777,
        )
        empty = np.array([], dtype=np.int64)
        for params in _PARAMS:
            _assert_parity(stream, empty.astype(np.int32), empty, params,
                           _RECIPES[0][0], label="(empty)")


# ---- hypothesis: same contract, shrinkable ---------------------------------

_records = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),    # inst gap
        st.sampled_from([KIND_LOAD, KIND_STORE, KIND_WRITEBACK,
                         KIND_PREFETCH]),
        st.booleans(),                             # dep
        st.integers(min_value=0, max_value=3),     # obj id
        st.integers(min_value=0, max_value=(4 * MIB) // 64 - 1),  # line
    ),
    min_size=1, max_size=16,
)


class TestHypothesisParity:
    @given(records=_records,
           params_i=st.integers(min_value=0, max_value=len(_PARAMS) - 1),
           recipe_i=st.integers(min_value=0, max_value=len(_RECIPES) - 1),
           group_seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=200, deadline=None)
    def test_random_trace_parity(self, records, params_i, recipe_i,
                                 group_seed):
        recipe, caps = _RECIPES[recipe_i]
        n = len(records)
        gaps, kinds, deps, objs, lines = zip(*records)
        inst = (np.cumsum(np.asarray(gaps, dtype=np.int64)) + 1)
        stream = MissStream(
            inst=inst,
            vline=np.asarray(lines, dtype=np.int64) * 64,
            obj_id=np.asarray(objs, dtype=np.int32),
            dep=np.asarray(deps, dtype=bool),
            kind=np.asarray(kinds, dtype=np.int8),
            total_instructions=int(inst[-1]) + 10,
        )
        groups = (np.arange(n, dtype=np.int32) + group_seed) % len(caps)
        groups = groups.astype(np.int32)
        gaddrs = np.asarray(
            [(lines[i] * 64) % caps[groups[i]] for i in range(n)],
            dtype=np.int64)
        _assert_parity(stream, groups, gaddrs, _PARAMS[params_i], recipe)


# ---- whole pipeline: run(spec), cache keys, pinned digests ------------------


def _metrics_doc(metrics) -> dict:
    """Deterministic form of RunMetrics: meta carries a timestamp, so it
    is checked separately (fast_path flag) and dropped here."""
    doc = metrics.to_dict()
    doc.pop("meta", None)
    return doc


def _digest(metrics) -> str:
    blob = json.dumps(_metrics_doc(metrics), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class TestRunSpecParity:
    def test_single_core_run_matches_reference(self):
        spec = RunSpec(workload="mcf", config="Heter-config1",
                       policy="moca", n_accesses=6000)
        fast = run(spec)
        ref = run(dataclasses.replace(spec, fast_path=False))
        assert fast.to_dict()["meta"]["fast_path"] is True
        assert ref.to_dict()["meta"]["fast_path"] is False
        assert _metrics_doc(fast) == _metrics_doc(ref)

    def test_multicore_run_matches_reference(self):
        spec = RunSpec(workload="2L1B1N", config="Homogen-DDR3",
                       policy="homogen", n_accesses=3000)
        fast = run(spec)
        ref = run(dataclasses.replace(spec, fast_path=False))
        assert fast.to_dict()["meta"]["fast_path"] is True
        assert ref.to_dict()["meta"]["fast_path"] is False
        assert _metrics_doc(fast) == _metrics_doc(ref)


class TestCacheKeyStability:
    """Default-valued specs must keep their pre-fast-path cache keys, so
    warm sweep caches survive the upgrade.  Forced-reference runs are a
    distinct request and get their own key."""

    def test_single_spec_key_pinned(self):
        spec = RunSpec(workload="mcf", config="Heter-config1",
                       policy="moca", n_accesses=20_000)
        assert spec.key() == ("ae1e8ff4bc9a4062327d5be316a5a7cc"
                              "7b085a027a491c01b7d33ecedb1e8e91")

    def test_multi_spec_key_pinned(self):
        spec = RunSpec(workload="2L1B1N", config="Homogen-DDR3",
                       policy="homogen", n_accesses=10_000)
        assert spec.key() == ("290a5b050d60590042ef88249cef7058"
                              "7b5ee9bfd17655ff5f589bdfee686c33")

    def test_forced_reference_gets_distinct_key(self):
        spec = RunSpec(workload="mcf", config="Heter-config1",
                       policy="moca", n_accesses=20_000)
        off = dataclasses.replace(spec, fast_path=False)
        assert off.key() != spec.key()
        assert off.canonical()["fast_path"] is False
        assert "fast_path" not in spec.canonical()
