#!/usr/bin/env python
"""Allocation-time placement (MOCA) vs runtime page migration.

The paper's Sec. IV-E argues MOCA's edge over migration-based schemes
(related work [19], [33]-[36]): migration needs continuous monitoring and
pays page-copy + TLB-shootdown costs, while MOCA decides placement once,
at allocation.  This example measures that trade-off with the library's
hotness-driven migrator across migration aggressiveness levels.

Run:  python examples/migration_vs_moca.py
"""

from repro import HETER_CONFIG1, RunSpec, run
from repro.sim.migration import run_single_migration
from repro.vm.migration import MigrationConfig

APPS = ("mcf", "lbm", "gcc")
N = 60_000


def main() -> None:
    print(f"system: {HETER_CONFIG1.build().describe()}\n")
    for app in APPS:
        moca = run(RunSpec(app, "Heter-config1", "moca", N))
        heta = run(RunSpec(app, "Heter-config1", "heter-app", N))
        print(f"== {app} ==")
        print(f"  {'policy':24s} {'mem time':>12s} {'exec':>12s} "
              f"{'copies':>7s} {'overhead':>9s}")
        print(f"  {'moca':24s} {moca.mem_access_cycles:12,d} "
              f"{moca.exec_cycles:12,d} {'-':>7s} {'-':>9s}")
        print(f"  {'heter-app':24s} {heta.mem_access_cycles:12,d} "
              f"{heta.exec_cycles:12,d} {'-':>7s} {'-':>9s}")
        for label, cfg in (
            ("migration (lazy)", MigrationConfig(epoch_misses=8_000,
                                                 max_migrations_per_epoch=16)),
            ("migration (default)", MigrationConfig()),
            ("migration (aggressive)", MigrationConfig(
                epoch_misses=1_000, max_migrations_per_epoch=128)),
        ):
            m, stats = run_single_migration(app, HETER_CONFIG1, cfg,
                                            n_accesses=N)
            print(f"  {label:24s} {m.mem_access_cycles:12,d} "
                  f"{m.exec_cycles:12,d} {stats.n_migrations:7,d} "
                  f"{stats.overhead_cycles:9,d}")
        print()
    print("Takeaway: migration helps workloads with a small, stable hot")
    print("set, but on pointer-chasing footprints it keeps paying copy")
    print("costs for pages it can never fully cover — MOCA's offline")
    print("classification places them correctly from the first touch.")


if __name__ == "__main__":
    main()
