#!/usr/bin/env python
"""Input drift: offline placement, runtime migration, and the online service.

The paper's Sec. IV-E argues MOCA's allocation-time placement beats
runtime page migration — but both arguments assume the evaluation input
resembles the training input.  This example (grown out of the old
migration-vs-moca comparison) drifts the input away from the profile
and measures all three answers:

* **offline MOCA** — the paper's frozen placement, profiled on ``train``;
* **hotness-driven migration** — no profile, chases the live hot set,
  pays copy + shootdown costs forever;
* **online MOCA** (``repro.service``) — boots from the offline
  placement, then reclassifies drifted objects at epoch boundaries
  under hysteresis and a bounded migration budget.

Run:  python examples/online_drift.py
"""

from repro import HETER_CONFIG1, RunSpec, run
from repro.service import OnlineSpec
from repro.vm.migration import MigrationConfig

APPS = ("milc", "gcc")
INPUTS = ("ref", "drift2")   # paper evaluation input, then hot/cold reversal
N = 60_000


def main() -> None:
    print(f"system: {HETER_CONFIG1.build().describe()}\n")
    for app in APPS:
        print(f"== {app} ==")
        print(f"  {'input':8s} {'policy':18s} {'mem time':>12s} "
              f"{'moves':>6s} {'pages':>6s}")
        for input_name in INPUTS:
            runs = (
                ("heter-app", RunSpec(app, "Heter-config1", "heter-app", N,
                                      input_name=input_name)),
                ("offline moca", RunSpec(app, "Heter-config1", "moca", N,
                                         input_name=input_name)),
                ("migration", RunSpec(app, "Heter-config1", "homogen", N,
                                      input_name=input_name,
                                      migration=MigrationConfig())),
                ("online moca", RunSpec(app, "Heter-config1", "moca", N,
                                        input_name=input_name,
                                        online=OnlineSpec())),
            )
            for label, spec in runs:
                m = run(spec)
                svc = m.meta.get("service", {})
                moves = svc.get("moves", "-")
                pages = svc.get("pages_moved", "-")
                print(f"  {input_name:8s} {label:18s} "
                      f"{m.mem_access_cycles:12,d} {moves!s:>6s} "
                      f"{pages!s:>6s}")
        print()
    print("Takeaway: on the training-adjacent input the online service")
    print("holds still (zero moves — hysteresis filters sampling noise)")
    print("and matches offline MOCA.  Once the input's hot/cold ranking")
    print("inverts, the frozen placement strands hot objects in slow")
    print("memory; the service detects the drift from live per-epoch")
    print("samples and migrates them back under its per-epoch budget,")
    print("without migration's perpetual copy churn.")


if __name__ == "__main__":
    main()
