#!/usr/bin/env python
"""Explore heterogeneous memory configurations (paper Sec. VI-C).

Evaluates the paper's three RLDRAM/HBM/LPDDR capacity splits plus a
user-defined fourth configuration on one workload set, and reports how
placement quality shifts with module sizes — the study behind the
paper's choice of config1.

Run:  python examples/memory_config_explorer.py
"""

from repro import RunSpec, run
from repro.sim.config import (
    ALL_SYSTEMS,
    GroupSpec,
    HETER_CONFIG1,
    HETER_CONFIG2,
    HETER_CONFIG3,
    SystemConfig,
)

# A configuration the paper did not test: all-premium, no LPDDR at all.
# Registering it in ALL_SYSTEMS makes it addressable by name in a
# RunSpec, so it runs through run() (and the sweep engine / result
# cache) like any built-in system.
NO_LP = SystemConfig(
    name="Heter-noLP",
    groups=(
        GroupSpec("lat", "RLDRAM3", 1, 1024),
        GroupSpec("bw", "HBM", 2, 512),
    ),
)
ALL_SYSTEMS[NO_LP.name] = NO_LP

MIX = "2L1B1N"
N_ACCESSES = 60_000


def main() -> None:
    print(f"workload set: {MIX}\n")
    rows = []
    for config in (HETER_CONFIG1, HETER_CONFIG2, HETER_CONFIG3, NO_LP):
        het = run(RunSpec(MIX, config.name, "heter-app", N_ACCESSES))
        moca = run(RunSpec(MIX, config.name, "moca", N_ACCESSES))
        rows.append((config, het, moca))

    base_het, base_moca = rows[0][1], rows[0][2]
    print(f"{'config':14s} {'policy':10s} {'mem time':>9s} {'mem EDP':>8s} "
          f"{'power':>7s}  (normalized to config1/heter-app)")
    for config, het, moca in rows:
        for label, m in (("heter-app", het), ("moca", moca)):
            print(f"{config.name:14s} {label:10s} "
                  f"{m.mem_access_cycles / base_het.mem_access_cycles:8.3f}x "
                  f"{m.memory_edp / base_het.memory_edp:7.3f}x "
                  f"{m.mem_power_w:6.3f}W")
    print("\nTakeaways (compare with paper Sec. VI-C):")
    print(" * bigger RLDRAM buys Heter-App speed but costs power;")
    print(" * MOCA keeps most of the speed at much lower power, so the")
    print("   small-RLDRAM config1 stays the most energy-efficient;")
    print(" * dropping LPDDR entirely (Heter-noLP) maximizes speed and")
    print("   shows why a power-optimized module earns its slot.")


if __name__ == "__main__":
    main()
