#!/usr/bin/env python
"""Data-center co-location study (the paper's multicore scenario).

Modern data centers co-locate several applications per machine
(Sec. VI intro).  This example evaluates three co-location mixes on the
heterogeneous memory system under application-level and object-level
allocation, and reports which placement policy each mix should use.

Run:  python examples/datacenter_colocation.py [--fast]
"""

import argparse

from repro import HETER_CONFIG1, RunSpec, mix, run

MIXES = ("3L1B", "2L1B1N", "2B2N")


def main(fast: bool = False) -> None:
    n = 30_000 if fast else 60_000
    print(f"memory system: {HETER_CONFIG1.build().describe()}\n")
    for mix_name in MIXES:
        workload = mix(mix_name)
        print(f"== mix {mix_name}: {', '.join(workload.apps)} ==")
        ddr3 = run(RunSpec(mix_name, "Homogen-DDR3", "homogen", n))
        het = run(RunSpec(mix_name, "Heter-config1", "heter-app", n))
        moca = run(RunSpec(mix_name, "Heter-config1", "moca", n))
        for label, m in (("Homogen-DDR3", ddr3), ("Heter-App", het),
                         ("MOCA", moca)):
            print(f"  {label:13s} exec={m.exec_cycles / ddr3.exec_cycles:5.3f}x  "
                  f"memT={m.mem_access_cycles / ddr3.mem_access_cycles:5.3f}x  "
                  f"memEDP={m.memory_edp / ddr3.memory_edp:5.3f}x  "
                  f"P={m.mem_power_w:5.3f}W")
        t_gain = 1 - moca.mem_access_cycles / het.mem_access_cycles
        e_gain = 1 - moca.memory_edp / het.memory_edp
        print(f"  -> MOCA vs Heter-App: memory time {t_gain:+.1%}, "
              f"memory EDP {e_gain:+.1%}\n")


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--fast", action="store_true",
                        help="shorter traces for a quick look")
    main(parser.parse_args().fast)
