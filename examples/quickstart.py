#!/usr/bin/env python
"""Quickstart: the full MOCA pipeline on one application.

Walks the paper's Fig. 7 flow end to end:

1. name heap objects (the Fig. 3 convention, demonstrated on both a
   synthetic allocation site and this very script's Python stack);
2. profile the application's training input offline;
3. classify every object with the Fig. 5 thresholds;
4. run the reference input on four memory systems and compare memory
   access time and memory EDP.

Run:  python examples/quickstart.py
"""

from repro import (
    MocaFramework,
    RunSpec,
    name_from_python_stack,
    name_from_site,
    profile_app,
    run,
)

APP = "disparity"  # the paper's Sec. VI-A anecdote application


def main() -> None:
    # --- 1. Naming ------------------------------------------------------
    print("== Object naming (paper Fig. 3) ==")
    synthetic = name_from_site(402)  # disparity's sad_cost allocation site
    live = name_from_python_stack()
    print(f"synthetic site 402 -> {synthetic}")
    print(f"this call site     -> {live}")

    # --- 2. Offline profiling -------------------------------------------
    print(f"\n== Profiling {APP} (training input) ==")
    profiled = profile_app(APP, "train", 120_000)
    print(f"app LLC MPKI = {profiled.app_mpki:.1f}, "
          f"ROB stall/load-miss = {profiled.app_stall_per_miss:.1f}")
    for prof in sorted(profiled.lut, key=lambda p: -p.llc_mpki):
        print(f"  {prof.label:24s} size={prof.size_bytes >> 20:3d} MiB  "
              f"MPKI={prof.llc_mpki:6.2f}  stall/miss={prof.stall_per_load_miss:5.1f}")

    # --- 3. Classification ----------------------------------------------
    print("\n== Classification (paper Fig. 5; Thr_Lat=1, Thr_BW=20) ==")
    moca = MocaFramework()
    instrumented = moca.instrument(APP, profiled)
    for name, typ in instrumented.types.items():
        print(f"  {str(name)[:40]:42s} -> {typ.value}")
    print(f"partition histogram: "
          f"{ {t.value: n for t, n in instrumented.partition_histogram().items()} }")

    # --- 4. Allocation + evaluation --------------------------------------
    print("\n== Reference-input runs ==")
    n = 120_000
    runs = {
        "Homogen-DDR3": run(RunSpec(APP, "Homogen-DDR3", "homogen", n)),
        "Homogen-RL": run(RunSpec(APP, "Homogen-RL", "homogen", n)),
        "Heter-App": run(RunSpec(APP, "Heter-config1", "heter-app", n)),
        "MOCA": run(RunSpec(APP, "Heter-config1", "moca", n)),
    }
    base = runs["Homogen-DDR3"]
    print(f"{'system':14s} {'mem access':>11s} {'mem EDP':>8s} "
          f"{'mem power':>10s}")
    for label, m in runs.items():
        print(f"{label:14s} {m.mem_access_cycles / base.mem_access_cycles:10.3f}x "
              f"{m.memory_edp / base.memory_edp:7.3f}x "
              f"{m.mem_power_w:8.3f} W")
    gain = 1 - runs["MOCA"].memory_edp / runs["Heter-App"].memory_edp
    print(f"\nMOCA vs Heter-App memory EDP: {gain:+.1%} "
          "(the paper's disparity anecdote, Sec. VI-A)")


if __name__ == "__main__":
    main()
