#!/usr/bin/env python
"""Bring your own application: profile, classify, and place a new app.

The downstream-user workflow the MOCA framework is built for: describe
your application's memory objects (or capture them with a tracing tool),
profile it once offline, and let MOCA type every allocation site.  Here
we model a toy in-memory key-value store:

* a big hash index — random, dependent probes (latency-bound);
* a value log — sequential scans for range queries (bandwidth-bound);
* a small LRU metadata cache — cache-resident (neither).

Run:  python examples/custom_application.py
"""

from repro import (
    HETER_CONFIG1,
    MocaFramework,
    ObjectBehavior,
    TraceBuilder,
)
from repro.cpu.core import InOrderWindowCore
from repro.cpu.hierarchy import CacheHierarchy
from repro.moca.allocation import MocaPolicy, plan_placement
from repro.moca.profiler import MemoryObjectProfiler
from repro.sim.metrics import collect_metrics
from repro.util.rng import stream
from repro.util.units import KIB, MIB

KV_STORE = [
    ObjectBehavior("hash_index", 24 * MIB, weight=0.35, pattern="chase",
                   gap_mean=15, burst_mean=16, write_frac=0.1, site=9001),
    ObjectBehavior("value_log", 20 * MIB, weight=0.25, pattern="strided",
                   stride=256, gap_mean=6, burst_mean=96, write_frac=0.3,
                   site=9002),
    ObjectBehavior("lru_meta", 192 * KIB, weight=0.25, pattern="hotspot",
                   hot_fraction=0.3, hot_weight=0.99, gap_mean=6,
                   burst_mean=8, write_frac=0.4, site=9003),
]


def main() -> None:
    # 1. Build a training trace and profile it.
    builder = TraceBuilder(KV_STORE)
    train = builder.build(120_000, stream("kvstore", "train"))
    profiled = MemoryObjectProfiler().profile_trace(train, "kvstore")
    print("== kvstore profile ==")
    for p in sorted(profiled.lut, key=lambda p: -p.llc_mpki):
        print(f"  {p.label:20s} MPKI={p.llc_mpki:6.2f} "
              f"stall/miss={p.stall_per_load_miss:5.1f}")

    # 2. Classify and inspect the instrumented types.
    moca = MocaFramework()
    instrumented = moca.instrument("kvstore", profiled)
    print("\n== classification ==")
    for b in KV_STORE:
        typ = instrumented.type_of_site(b.site)
        print(f"  {b.name:20s} -> {typ.value if typ else 'unprofiled'}")

    # 3. Run the *test* input on the heterogeneous system under MOCA.
    test = TraceBuilder(KV_STORE).build(120_000, stream("kvstore", "test"))
    mstream, _ = CacheHierarchy().filter_trace(test)
    memsys = HETER_CONFIG1.build()
    allocator = HETER_CONFIG1.make_allocator(memsys)
    policy = MocaPolicy([moca.runtime_types(instrumented, test)],
                        [moca.runtime_heat(instrumented, test)])
    plan = plan_placement([mstream], policy, allocator,
                          layouts=[test.layout])
    core = InOrderWindowCore(mstream, plan.groups[0], plan.gaddrs[0])
    result = core.run_to_completion(memsys)
    metrics = collect_metrics(HETER_CONFIG1.name, "moca", "kvstore",
                              [result], memsys)

    print("\n== placement outcome ==")
    for group, pool in allocator.pools.items():
        gname = memsys.groups[group].name
        print(f"  {gname:10s} {pool.n_allocated:6d} pages "
              f"({pool.n_allocated * 4 // 1024} MiB)")
    print(f"\nIPC={metrics.ipc:.3f}  mem power={metrics.mem_power_w:.3f} W  "
          f"mean request latency="
          f"{metrics.mem_access_cycles / max(1, metrics.n_requests):.1f} cyc")


if __name__ == "__main__":
    main()
